"""Exporter tests: Chrome trace JSON, JSON lines, Prometheus text."""

from __future__ import annotations

import json

from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    span_to_dict,
    spans_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def make_records():
    t = Tracer(enabled=True)
    with t.span("cluster.search", {"collection": "c"}):
        with t.span("cluster.fanout", {"width": 2}):
            with t.span("rpc.search", {"worker": "w0"}):
                pass
            with t.span("rpc.search", {"worker": "w1"}):
                pass
    with t.span("cluster.upsert"):
        pass
    return t.spans()


class TestChromeTrace:
    def test_document_is_json_serializable_and_complete(self):
        records = make_records()
        doc = chrome_trace(records)
        json.dumps(doc)  # must not raise
        assert doc["displayTimeUnit"] == "ms"
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(slices) == len(records)
        for e in slices:
            for key in ("name", "cat", "ts", "dur", "pid", "tid", "args"):
                assert key in e
            assert e["ts"] >= 0.0
            assert e["dur"] >= 0.0
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)

    def test_one_pid_per_trace(self):
        records = make_records()
        doc = chrome_trace(records)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        pid_by_trace = {}
        for record, event in zip(records, slices):
            pid_by_trace.setdefault(record.trace_id, set()).add(event["pid"])
        # Every span of a trace lands on that trace's process row.
        assert all(len(pids) == 1 for pids in pid_by_trace.values())
        # The two traces (search, upsert) get distinct rows.
        assert len({next(iter(p)) for p in pid_by_trace.values()}) == 2

    def test_parent_links_preserved_in_args(self):
        records = make_records()
        doc = chrome_trace(records)
        slices = {e["args"]["span_id"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        for record in records:
            if record.parent_id is not None:
                assert slices[record.span_id]["args"]["parent_id"] == record.parent_id

    def test_empty_records(self):
        doc = chrome_trace([])
        assert doc["traceEvents"] == []

    def test_write_round_trip(self, tmp_path):
        path = str(tmp_path / "out.trace.json")
        assert write_chrome_trace(path, make_records()) == path
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])


class TestJsonl:
    def test_one_line_per_span(self):
        records = make_records()
        lines = spans_jsonl(records).splitlines()
        assert len(lines) == len(records)
        parsed = [json.loads(line) for line in lines]
        assert {p["name"] for p in parsed} == {r.name for r in records}
        for p in parsed:
            for key in ("trace_id", "span_id", "parent_id", "name", "start_s",
                        "duration_s", "thread", "status", "attrs"):
                assert key in p

    def test_span_to_dict_attrs(self):
        [record] = [r for r in make_records() if r.name == "cluster.search"]
        d = span_to_dict(record)
        assert d["attrs"] == {"collection": "c"}

    def test_write_jsonl(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        write_spans_jsonl(path, make_records())
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_write_jsonl_empty(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        write_spans_jsonl(path, [])
        with open(path, encoding="utf-8") as fh:
            assert fh.read() == ""


class TestPrometheus:
    def make_registry(self):
        reg = MetricsRegistry()
        reg.counter("cluster.searches").inc(3)
        reg.gauge("cluster.workers").set(4)
        h = reg.histogram("cluster.query_s", bounds=[0.001, 0.01, 0.1])
        h.observe_many([0.0005, 0.005, 0.05, 5.0])
        return reg

    def test_exposition_format(self):
        text = prometheus_text(self.make_registry())
        assert "# TYPE cluster_searches counter" in text
        assert "cluster_searches 3" in text
        assert "# TYPE cluster_workers gauge" in text
        assert "cluster_workers 4" in text
        assert "# TYPE cluster_query_s histogram" in text
        assert 'cluster_query_s_bucket{le="+Inf"} 4' in text
        assert "cluster_query_s_count 4" in text
        assert text.endswith("\n")

    def test_buckets_are_cumulative_and_monotone(self):
        text = prometheus_text(self.make_registry())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("cluster_query_s_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_metric_names_are_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.with dots").inc()
        text = prometheus_text(reg)
        assert "weird_name_with_dots 1" in text

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""
