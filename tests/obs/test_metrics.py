"""Histogram correctness: percentile resolution, associative merge, diff."""

from __future__ import annotations

import threading
from bisect import bisect_left

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.perfmodel.variability import NoiseModel, VariabilityStudy


def bucket_width_at(value: float, bounds=DEFAULT_LATENCY_BUCKETS_S) -> float:
    """Width of the bucket that holds ``value``."""
    idx = bisect_left(bounds, value)
    lo = bounds[idx - 1] if idx > 0 else 0.0
    hi = bounds[idx] if idx < len(bounds) else float("inf")
    return hi - lo


class TestCounterGauge:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_gauge(self):
        g = Gauge("x")
        g.set(2.5)
        g.add(0.5)
        assert g.value == pytest.approx(3.0)
        g.reset()
        assert g.value == 0.0


class TestHistogramBasics:
    def test_observe_and_snapshot(self):
        h = Histogram("lat")
        h.observe_many([0.001, 0.002, 0.01])
        snap = h.snapshot()
        assert snap.count == 3
        assert snap.sum == pytest.approx(0.013)
        assert snap.min == pytest.approx(0.001)
        assert snap.max == pytest.approx(0.01)
        assert snap.mean == pytest.approx(0.013 / 3)

    def test_negative_clamps_overflow_counts(self):
        h = Histogram("lat", bounds=[1.0, 2.0])
        h.observe(-5.0)  # clamps to 0
        h.observe(100.0)  # overflow bucket
        snap = h.snapshot()
        assert snap.count == 2
        assert snap.counts == (1, 0, 1)
        assert snap.min == 0.0
        assert snap.max == 100.0

    def test_empty_snapshot_is_neutral(self):
        snap = HistogramSnapshot.empty()
        assert snap.count == 0
        assert snap.p50 == 0.0
        assert snap.as_dict()["count"] == 0

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=[])
        with pytest.raises(ValueError):
            Histogram("x", bounds=[-1.0, 1.0])

    def test_as_dict_has_report_schema_keys(self):
        h = Histogram("lat")
        h.observe(0.005)
        d = h.snapshot().as_dict()
        for key in ("count", "mean", "p50", "p95", "p99", "min", "max", "sum"):
            assert key in d


class TestPercentileResolution:
    """The resolution contract: histogram percentiles land within one
    bucket width of the exact sample percentiles (checked against the
    perfmodel's exact-sample TrialStats machinery)."""

    @pytest.mark.parametrize("cv", [0.05, 0.5])
    @pytest.mark.parametrize("q", [50.0, 95.0, 99.0])
    def test_within_one_bucket_of_exact(self, cv, q):
        study = VariabilityStudy(
            NoiseModel(cv=cv, straggler_prob=0.1, straggler_factor=3.0, seed=5),
            trials=2000,
        )
        stats = study.run(lambda: 0.004)  # ~4ms latencies with a heavy tail
        h = Histogram("lat")
        h.observe_many(stats.samples)
        exact = stats.percentile(q)
        approx = h.percentile(q)
        assert abs(approx - exact) <= bucket_width_at(exact), (
            f"p{q}: histogram {approx} vs exact {exact}"
        )

    def test_percentile_range_validated(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.snapshot().percentile(101)


class TestMerge:
    def _hists(self):
        rng = np.random.default_rng(3)
        parts = []
        for i in range(3):
            h = Histogram(f"w{i}")
            h.observe_many(rng.lognormal(mean=-6.0, sigma=0.8, size=500))
            parts.append(h.snapshot())
        return parts

    def test_merge_is_associative_and_commutative(self):
        a, b, c = self._hists()
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = c.merge(a).merge(b)
        for other in (right, swapped):
            assert left.counts == other.counts
            assert left.count == other.count
            assert left.min == other.min
            assert left.max == other.max
            # float addition is only associative to rounding error
            assert left.sum == pytest.approx(other.sum, abs=1e-9)

    def test_merge_matches_single_histogram_over_union(self):
        """The per-worker reduce must equal observing everything centrally."""
        rng = np.random.default_rng(9)
        samples = rng.lognormal(mean=-6.0, sigma=1.0, size=900)
        whole = Histogram("all")
        whole.observe_many(samples)
        parts = []
        for part in np.array_split(samples, 4):
            h = Histogram("part")
            h.observe_many(part)
            parts.append(h.snapshot())
        merged = parts[0]
        for p in parts[1:]:
            merged = merged.merge(p)
        assert merged.counts == whole.snapshot().counts
        for q in (50, 95, 99):
            assert merged.percentile(q) == pytest.approx(
                whole.percentile(q), rel=1e-12
            )

    def test_merge_identity_with_empty(self):
        a, _, _ = self._hists()
        empty = HistogramSnapshot.empty(a.bounds)
        assert a.merge(empty) is a
        assert empty.merge(a) is a

    def test_mismatched_buckets_rejected(self):
        a = Histogram("a", bounds=[1.0]).snapshot()
        b = Histogram("b", bounds=[2.0]).snapshot()
        with pytest.raises(ValueError):
            a.merge(b)
        with pytest.raises(ValueError):
            a.minus(b)

    def test_merge_from_folds_into_mutable(self):
        a = Histogram("a")
        a.observe(0.001)
        b = Histogram("b")
        b.observe(0.002)
        a.merge_from(b)
        assert a.count == 2


class TestMinus:
    def test_minus_recovers_interval(self):
        h = Histogram("lat")
        h.observe_many([0.001, 0.002])
        before = h.snapshot()
        h.observe_many([0.01, 0.02, 0.03])
        delta = h.snapshot().minus(before)
        assert delta.count == 3
        assert delta.sum == pytest.approx(0.06)
        fresh = Histogram("x")
        fresh.observe_many([0.01, 0.02, 0.03])
        assert delta.counts == fresh.snapshot().counts

    def test_minus_of_self_is_empty(self):
        h = Histogram("lat")
        h.observe_many([0.001, 0.5])
        snap = h.snapshot()
        delta = snap.minus(snap)
        assert delta.count == 0
        assert delta.min == 0.0 and delta.max == 0.0


class TestConcurrency:
    def test_parallel_observe_loses_nothing(self):
        h = Histogram("lat")
        n_threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                h.observe(0.003)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = h.snapshot()
        assert snap.count == n_threads * per_thread
        assert sum(snap.counts) == snap.count


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.counter("c") is reg.counter("c")
        assert reg.gauge("g") is reg.gauge("g")

    def test_snapshot_and_reset(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(0.001)
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        snaps = reg.snapshot_histograms()
        assert snaps["h"].count == 1
        d = reg.as_dict()
        assert d["counters"]["c"] == 1
        assert d["histograms"]["h"]["count"] == 1
        reg.reset()
        assert reg.histogram("h").count == 0
        assert reg.counter("c").value == 0
        assert reg.gauge("g").value == 0.0

    def test_global_swap(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
