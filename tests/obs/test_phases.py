"""Phase recorder tests: the paper's embed→insert→index→query pipeline."""

import pytest

from repro.obs.clock import reset_clock, set_clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.phases import PAPER_PHASES, PHASE_SECTIONS, PhaseRecorder
from repro.obs.trace import Tracer, set_tracer


@pytest.fixture(autouse=True)
def _restore_clock():
    yield
    reset_clock()


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_paper_phase_vocabulary():
    assert PAPER_PHASES == ("embed", "insert", "index", "query")
    assert set(PHASE_SECTIONS) == set(PAPER_PHASES)


def test_records_wall_time_per_phase():
    clock = FakeClock()
    set_clock(clock)
    rec = PhaseRecorder(MetricsRegistry())
    with rec.phase("insert"):
        clock.now += 2.0
    with rec.phase("insert"):
        clock.now += 4.0
    with rec.phase("query"):
        clock.now += 1.0
    stats = rec.stats("insert")
    assert stats.runs == 2
    assert stats.total_s == pytest.approx(6.0)
    assert stats.mean_s == pytest.approx(3.0)
    assert rec.total_s == pytest.approx(7.0)


def test_report_is_pipeline_ordered_with_sections():
    clock = FakeClock()
    set_clock(clock)
    rec = PhaseRecorder(MetricsRegistry())
    for name in ("query", "warmup", "insert"):  # deliberately out of order
        with rec.phase(name):
            clock.now += 1.0
    report = rec.report()
    assert list(report) == ["insert", "query", "warmup"]
    assert report["insert"]["section"] == PHASE_SECTIONS["insert"]
    assert report["warmup"]["section"] == ""
    assert report["query"]["runs"] == 1


def test_phase_histogram_lands_in_registry():
    registry = MetricsRegistry()
    rec = PhaseRecorder(registry)
    with rec.phase("index"):
        pass
    snap = registry.snapshot_histograms()["phase.index.wall_s"]
    assert snap.count == 1


def test_phase_emits_span_when_tracing():
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        rec = PhaseRecorder(MetricsRegistry())
        with rec.phase("embed"):
            pass
        assert [r.name for r in tracer.spans()] == ["phase.embed"]
    finally:
        set_tracer(previous)


def test_strict_rejects_unknown_phases():
    rec = PhaseRecorder(MetricsRegistry(), strict=True)
    with pytest.raises(ValueError):
        rec.phase("warmup")
    with rec.phase("embed"):
        pass


def test_reset():
    rec = PhaseRecorder(MetricsRegistry())
    with rec.phase("query"):
        pass
    rec.reset()
    assert rec.stats("query").runs == 0
    assert rec.total_s == 0.0
