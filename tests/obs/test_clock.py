"""Tests for the single monotonic clock every duration goes through."""

import pytest

from repro.obs.clock import (
    Stopwatch,
    elapsed_since,
    monotonic,
    reset_clock,
    set_clock,
)


@pytest.fixture(autouse=True)
def _restore_clock():
    yield
    reset_clock()


class FakeClock:
    """Deterministic clock advanced by hand."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def test_monotonic_advances():
    t0 = monotonic()
    t1 = monotonic()
    assert t1 >= t0


def test_elapsed_since_matches_difference():
    clock = FakeClock(10.0)
    set_clock(clock)
    t0 = monotonic()
    clock.advance(2.5)
    assert elapsed_since(t0) == pytest.approx(2.5)


def test_set_clock_is_picked_up_at_call_time():
    clock = FakeClock(100.0)
    set_clock(clock)
    assert monotonic() == 100.0
    clock.advance(1.0)
    assert monotonic() == 101.0
    reset_clock()
    # Back on perf_counter: nowhere near the fake's epoch-like values
    # being frozen — two reads must not go backwards.
    assert monotonic() <= monotonic()


def test_stopwatch_elapsed_stop_restart():
    clock = FakeClock()
    set_clock(clock)
    sw = Stopwatch()
    clock.advance(1.0)
    assert sw.elapsed() == pytest.approx(1.0)
    clock.advance(1.0)
    assert sw.stop() == pytest.approx(2.0)
    clock.advance(5.0)
    # Stopped: the value is frozen.
    assert sw.elapsed() == pytest.approx(2.0)
    assert sw.stop() == pytest.approx(2.0)
    sw.restart()
    clock.advance(0.5)
    assert sw.elapsed() == pytest.approx(0.5)


def test_spans_use_module_clock():
    """A span's duration must come from the same clock as every other
    measurement — swap the clock and the span duration follows."""
    from repro.obs.trace import Tracer

    clock = FakeClock(50.0)
    set_clock(clock)
    tracer = Tracer(enabled=True)
    with tracer.span("work"):
        clock.advance(3.0)
    [record] = tracer.spans()
    assert record.duration_s == pytest.approx(3.0)
