"""Bench-report tests: schema validation, atomic write, round trip."""

import json
import os

import pytest

from repro.obs.benchreport import (
    SCHEMA,
    BenchReport,
    default_report_path,
    load_bench_report,
    validate_bench_report,
)
from repro.obs.metrics import Histogram


def full_report():
    h = Histogram("upsert")
    h.observe_many([0.001, 0.002, 0.004])
    report = BenchReport(phase="insert")
    report.add_throughput("points_per_s", 12345.6)
    report.add_latency("cluster.upsert_s", h.snapshot())
    report.add_latency_samples("cluster.query_s", [0.001, 0.003])
    report.add_fanout(workers=4, mean_width=4.0)
    report.check("bit_identical", True)
    report.extra["note"] = "test"
    return report


class TestBuild:
    def test_as_dict_shape(self):
        doc = full_report().as_dict()
        assert doc["schema"] == SCHEMA
        assert doc["phase"] == "insert"
        assert doc["throughput"]["points_per_s"] == pytest.approx(12345.6)
        assert doc["latency_s"]["cluster.upsert_s"]["count"] == 3
        assert doc["latency_s"]["cluster.query_s"]["count"] == 2
        assert doc["fanout"]["workers"] == 4
        assert doc["checks"]["bit_identical"] is True
        assert doc["meta"]["cpu_count"] >= 1
        assert isinstance(doc["meta"]["smoke"], bool)

    def test_check_returns_outcome(self):
        report = BenchReport(phase="x")
        assert report.check("ok", True) is True
        assert report.check("bad", False) is False
        assert report.checks == {"ok": True, "bad": False}

    def test_add_latency_accepts_plain_dict(self):
        report = BenchReport(phase="x")
        summary = {"count": 1, "mean": 0.1, "p50": 0.1, "p95": 0.1, "p99": 0.1}
        report.add_latency("lat", summary)
        assert validate_bench_report(report.as_dict()) == []


class TestValidation:
    def test_valid_report_has_no_errors(self):
        assert validate_bench_report(full_report().as_dict()) == []

    def test_not_a_dict(self):
        assert validate_bench_report([1, 2]) != []

    @pytest.mark.parametrize(
        "mutation",
        [
            lambda d: d.pop("schema"),
            lambda d: d.pop("phase"),
            lambda d: d.pop("latency_s"),
            lambda d: d.update(schema="something/else"),
            lambda d: d.update(phase=""),
            lambda d: d.update(throughput={"x": "fast"}),
            lambda d: d.update(latency_s={"x": {"count": 1}}),  # missing p50…
            lambda d: d.update(latency_s={"x": "not a dict"}),
            lambda d: d.update(checks={"x": "yes"}),
        ],
    )
    def test_broken_reports_rejected(self, mutation):
        doc = full_report().as_dict()
        mutation(doc)
        assert validate_bench_report(doc) != []


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        path = full_report().write(root=str(tmp_path))
        assert path == os.path.join(str(tmp_path), "BENCH_insert.json")
        doc = load_bench_report(path)
        assert doc["phase"] == "insert"
        # Atomic write: the tmp file was renamed away.
        assert not os.path.exists(path + ".tmp")

    def test_explicit_path_wins(self, tmp_path):
        path = str(tmp_path / "custom.json")
        assert full_report().write(path) == path
        assert load_bench_report(path)["schema"] == SCHEMA

    def test_write_refuses_invalid(self, tmp_path):
        report = BenchReport(phase="")
        with pytest.raises(ValueError):
            report.write(root=str(tmp_path))
        assert os.listdir(tmp_path) == []

    def test_load_rejects_tampered_file(self, tmp_path):
        path = full_report().write(root=str(tmp_path))
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        doc["checks"]["bit_identical"] = "yes"
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        with pytest.raises(ValueError):
            load_bench_report(path)

    def test_default_report_path(self):
        assert default_report_path("query") == os.path.join(".", "BENCH_query.json")
        assert default_report_path("fault", "/x") == "/x/BENCH_fault.json"


def test_harness_phase_reports(tmp_path):
    """The bench harness folds experiment results into per-phase reports."""
    from repro.bench.harness import PHASE_FOR_EXPERIMENT, write_phase_reports
    from repro.bench.report import ExperimentResult

    results = {}
    for eid in ("table2", "figure2", "table3", "figure4"):
        result = ExperimentResult(eid, f"title {eid}", ["col"], [[1]])
        result.check("shape", True)
        results[eid] = result
    results["table1"] = ExperimentResult("table1", "features", ["col"], [[1]])

    paths = write_phase_reports(results, root=str(tmp_path))
    assert set(paths) == {"embed", "insert", "query"}
    insert = load_bench_report(paths["insert"])
    # figure2 and table3 both map to the insert phase and both land there.
    assert insert["checks"] == {"figure2.shape": True, "table3.shape": True}
    assert set(insert["extra"]) == {"figure2", "table3"}
    assert PHASE_FOR_EXPERIMENT["figure3"] == "index"
