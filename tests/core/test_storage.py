"""VectorArena and IdTracker tests."""

import numpy as np
import pytest

from repro.core.errors import DimensionMismatchError, PointNotFoundError
from repro.core.storage import IdTracker, VectorArena

DIM = 4


class TestVectorArena:
    def test_append_and_get(self):
        arena = VectorArena(DIM)
        off = arena.append(np.arange(DIM, dtype=np.float32))
        assert off == 0
        assert np.array_equal(arena.get(0), np.arange(DIM, dtype=np.float32))

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            VectorArena(0)
        arena = VectorArena(DIM)
        with pytest.raises(DimensionMismatchError):
            arena.append(np.zeros(DIM + 1, dtype=np.float32))

    def test_growth_preserves_data(self):
        arena = VectorArena(DIM)
        rng = np.random.default_rng(0)
        vecs = rng.normal(size=(500, DIM)).astype(np.float32)
        for v in vecs:
            arena.append(v)
        assert len(arena) == 500
        assert np.allclose(arena.view(), vecs)

    def test_extend_returns_consecutive_offsets(self):
        arena = VectorArena(DIM)
        arena.append(np.zeros(DIM, dtype=np.float32))
        offsets = arena.extend(np.ones((10, DIM), dtype=np.float32))
        assert offsets.tolist() == list(range(1, 11))

    def test_extend_rejects_bad_shape(self):
        arena = VectorArena(DIM)
        with pytest.raises(DimensionMismatchError):
            arena.extend(np.ones((3, DIM + 2), dtype=np.float32))

    def test_reserve_single_allocation(self):
        arena = VectorArena(DIM)
        arena.reserve(1000)
        cap = arena.capacity
        arena.extend(np.zeros((1000, DIM), dtype=np.float32))
        assert arena.capacity == cap  # no further realloc

    def test_overwrite(self):
        arena = VectorArena(DIM)
        arena.append(np.zeros(DIM, dtype=np.float32))
        arena.overwrite(0, np.full(DIM, 7.0, dtype=np.float32))
        assert np.all(arena.get(0) == 7.0)

    def test_overwrite_bounds(self):
        arena = VectorArena(DIM)
        with pytest.raises(IndexError):
            arena.overwrite(0, np.zeros(DIM, dtype=np.float32))

    def test_get_bounds(self):
        arena = VectorArena(DIM)
        with pytest.raises(IndexError):
            arena.get(0)

    def test_view_is_view_not_copy(self):
        arena = VectorArena(DIM)
        arena.append(np.zeros(DIM, dtype=np.float32))
        view = arena.view()
        arena.overwrite(0, np.ones(DIM, dtype=np.float32))
        assert np.all(view[0] == 1.0)

    def test_take(self):
        arena = VectorArena(DIM)
        arena.extend(np.arange(5 * DIM, dtype=np.float32).reshape(5, DIM))
        taken = arena.take(np.array([3, 1]))
        assert np.array_equal(taken[0], arena.get(3))

    def test_nbytes(self):
        arena = VectorArena(DIM)
        arena.extend(np.zeros((10, DIM), dtype=np.float32))
        assert arena.nbytes == 10 * DIM * 4

    def test_on_disk_roundtrip(self, tmp_path):
        arena = VectorArena(DIM, on_disk=True, directory=str(tmp_path))
        vecs = np.random.default_rng(1).normal(size=(300, DIM)).astype(np.float32)
        arena.extend(vecs)
        assert np.allclose(arena.view(), vecs)
        arena.close()

    def test_on_disk_growth(self, tmp_path):
        arena = VectorArena(DIM, on_disk=True, directory=str(tmp_path))
        for i in range(200):
            arena.append(np.full(DIM, float(i), dtype=np.float32))
        assert float(arena.get(150)[0]) == 150.0
        arena.close()


class TestIdTracker:
    def test_register_and_lookup(self):
        t = IdTracker()
        t.register(42, 0)
        assert t.offset_of(42) == 0
        assert t.id_at(0) == 42
        assert t.contains(42)

    def test_register_requires_append_order(self):
        t = IdTracker()
        with pytest.raises(ValueError):
            t.register(1, 5)

    def test_missing_point_raises(self):
        t = IdTracker()
        with pytest.raises(PointNotFoundError):
            t.offset_of(99)

    def test_delete_tombstones(self):
        t = IdTracker()
        t.register(1, 0)
        t.register(2, 1)
        freed = t.mark_deleted(1)
        assert freed == 0
        assert not t.contains(1)
        assert t.is_deleted(0)
        assert len(t) == 1
        assert t.deleted_count == 1

    def test_live_offsets_skips_deleted(self):
        t = IdTracker()
        for i in range(5):
            t.register(i * 10, i)
        t.mark_deleted(20)
        assert t.live_offsets().tolist() == [0, 1, 3, 4]
        assert t.live_ids() == [0, 10, 30, 40]

    def test_ids_at_vectorized(self):
        t = IdTracker()
        for i in range(5):
            t.register(i * 7, i)
        assert t.ids_at(np.array([4, 0])).tolist() == [28, 0]

    def test_deleted_mask(self):
        t = IdTracker()
        t.register(1, 0)
        t.register(2, 1)
        t.mark_deleted(2)
        assert t.deleted_mask().tolist() == [False, True]

    def test_empty_live_offsets(self):
        assert IdTracker().live_offsets().tolist() == []
