"""IVF / IVF-PQ index tests."""

import numpy as np
import pytest

from repro.core.errors import IndexNotBuiltError
from repro.core.index.flat import FlatIndex
from repro.core.index.ivf import IvfIndex
from repro.core.storage import VectorArena
from repro.core.types import Distance, IvfConfig

DIM = 16


def make(n=500, seed=0, distance=Distance.COSINE, config=None):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, DIM)).astype(np.float32)
    if distance is Distance.COSINE:
        data /= np.linalg.norm(data, axis=1, keepdims=True)
    arena = VectorArena(DIM)
    arena.extend(data)
    index = IvfIndex(arena, distance, config or IvfConfig(n_lists=16, n_probe=4))
    index.build(data, np.arange(n, dtype=np.int64))
    return arena, index, data


class TestBuild:
    def test_requires_build_before_add(self):
        arena = VectorArena(DIM)
        index = IvfIndex(arena, Distance.COSINE)
        with pytest.raises(IndexNotBuiltError):
            index.add(0, np.ones(DIM, dtype=np.float32))

    def test_requires_build_before_search(self):
        arena = VectorArena(DIM)
        index = IvfIndex(arena, Distance.COSINE)
        with pytest.raises(IndexNotBuiltError):
            index.search(np.ones(DIM, dtype=np.float32), 5)

    def test_empty_build_rejected(self):
        arena = VectorArena(DIM)
        index = IvfIndex(arena, Distance.COSINE)
        with pytest.raises(ValueError):
            index.build(np.empty((0, DIM), dtype=np.float32), np.empty(0, dtype=np.int64))

    def test_all_vectors_assigned(self):
        _, index, _ = make()
        assert int(index.list_sizes().sum()) == 500
        assert index.size == 500

    def test_lists_clamped_to_n(self):
        _, index, _ = make(n=5, config=IvfConfig(n_lists=64))
        assert index.n_lists <= 5

    def test_incremental_add_after_build(self):
        arena, index, _ = make()
        v = np.random.default_rng(9).normal(size=DIM).astype(np.float32)
        v /= np.linalg.norm(v)
        off = arena.append(v)
        index.add(off, v)
        assert index.size == 501
        offsets, _ = index.search(v, 1, nprobe=16)
        assert offsets[0] == off


class TestSearch:
    def test_full_probe_is_exact(self):
        arena, index, data = make()
        flat = FlatIndex(arena, Distance.COSINE)
        flat.build(data, np.arange(500, dtype=np.int64))
        q = data[7]
        exact = flat.search(q, 10)[0].tolist()
        ivf = index.search(q, 10, nprobe=index.n_lists)[0].tolist()
        assert exact == ivf

    def test_recall_reasonable_at_partial_probe(self):
        arena, index, data = make(seed=3)
        flat = FlatIndex(arena, Distance.COSINE)
        flat.build(data, np.arange(500, dtype=np.int64))
        rng = np.random.default_rng(5)
        recalls = []
        for _ in range(15):
            q = rng.normal(size=DIM).astype(np.float32)
            exact = set(flat.search(q, 10)[0].tolist())
            approx = set(index.search(q, 10, nprobe=8)[0].tolist())
            recalls.append(len(exact & approx) / 10)
        assert np.mean(recalls) >= 0.6

    def test_predicate(self):
        _, index, data = make()
        offsets, _ = index.search(data[0], 10, predicate=lambda o: o < 100, nprobe=16)
        assert all(o < 100 for o in offsets)

    def test_empty_result_under_impossible_predicate(self):
        _, index, data = make()
        offsets, _ = index.search(data[0], 5, predicate=lambda o: False)
        assert len(offsets) == 0


class TestIvfPq:
    def test_pq_search_with_rescore(self):
        config = IvfConfig(n_lists=8, n_probe=8, pq_m=4, pq_bits=6)
        arena, index, data = make(n=400, config=config)
        q = data[11]
        offsets, scores = index.search(q, 10, rescore=True)
        assert 11 in offsets.tolist()[:3]  # self should be near the top

    def test_pq_without_rescore_still_ranked(self):
        config = IvfConfig(n_lists=8, n_probe=8, pq_m=4, pq_bits=6)
        _, index, data = make(n=400, config=config)
        offsets, scores = index.search(data[0], 10, rescore=False)
        assert len(offsets) == 10
        assert np.all(np.diff(scores) <= 1e-5)  # similarity descending

    def test_pq_recall_floor(self):
        config = IvfConfig(n_lists=8, n_probe=8, pq_m=8, pq_bits=8)
        arena, index, data = make(n=400, seed=2, config=config)
        flat = FlatIndex(arena, Distance.COSINE)
        flat.build(data, np.arange(400, dtype=np.int64))
        rng = np.random.default_rng(6)
        recalls = []
        for _ in range(10):
            q = rng.normal(size=DIM).astype(np.float32)
            exact = set(flat.search(q, 10)[0].tolist())
            approx = set(index.search(q, 10)[0].tolist())
            recalls.append(len(exact & approx) / 10)
        assert np.mean(recalls) >= 0.5
