"""Parallel per-segment index builds (threads and processes).

The knob (``OptimizerConfig.max_indexing_threads`` / the ``max_threads``
argument of ``Collection.build_index``) must be invisible in results:
seeded HNSW construction is deterministic, so serial, threaded and
process-pool builds produce bit-identical indexes.
"""

import numpy as np
import pytest

from repro.core import (
    Collection,
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    VectorParams,
)
from repro.core.parallel import build_segment_indexes, resolve_worker_count

DIM = 16
N = 400


def make_collection(max_indexing_threads=1, max_segment_size=100, threshold=0):
    config = CollectionConfig(
        "par",
        VectorParams(size=DIM, distance=Distance.COSINE),
        optimizer=OptimizerConfig(
            indexing_threshold=threshold,
            max_segment_size=max_segment_size,
            max_indexing_threads=max_indexing_threads,
        ),
    )
    col = Collection(config)
    rng = np.random.default_rng(13)
    vectors = rng.normal(size=(N, DIM)).astype(np.float32)
    col.upsert([PointStruct(id=i, vector=vectors[i]) for i in range(N)])
    return col


def queries(n=10, seed=21):
    return np.random.default_rng(seed).normal(size=(n, DIM)).astype(np.float32)


def search_keys(col, qs):
    from repro.core.types import SearchRequest

    return [
        [(h.id, h.score) for h in col.search(SearchRequest(vector=q, limit=10))]
        for q in qs
    ]


class TestResolveWorkerCount:
    def test_none_and_one_are_serial(self):
        assert resolve_worker_count(None, 8) == 1
        assert resolve_worker_count(1, 8) == 1

    def test_capped_at_task_count(self):
        assert resolve_worker_count(16, 3) == 3

    def test_zero_means_cpu_count(self):
        import os

        assert resolve_worker_count(0, 64) == min(os.cpu_count() or 1, 64)

    def test_no_tasks(self):
        assert resolve_worker_count(4, 0) == 1


class TestCollectionParallelBuild:
    def test_threaded_build_bit_identical_to_serial(self):
        serial = make_collection()
        threaded = make_collection()
        assert len(serial.segments) >= 4
        serial.build_index("hnsw", max_threads=1)
        threaded.build_index("hnsw", max_threads=4)
        assert search_keys(serial, queries()) == search_keys(threaded, queries())

    def test_process_build_bit_identical_to_serial(self):
        serial = make_collection()
        forked = make_collection()
        serial.build_index("hnsw", max_threads=1)
        forked.build_index("hnsw", max_threads=2, use_processes=True)
        assert forked.last_build_report.mode == "processes"
        assert search_keys(serial, queries()) == search_keys(forked, queries())

    def test_build_report_filled(self):
        col = make_collection()
        col.build_index("hnsw", max_threads=2)
        report = col.last_build_report
        assert report.mode == "threads"
        assert report.workers == 2
        assert report.segments == len(col.segments)
        assert report.wall_seconds > 0
        assert report.busy_seconds > 0
        assert 0 < report.utilization <= 1.0 + 1e-9

    def test_default_uses_optimizer_knob(self):
        col = make_collection(max_indexing_threads=3)
        col.build_index("hnsw")
        assert col.last_build_report.workers == 3
        assert col.last_build_report.mode == "threads"


class TestOptimizerParallelBuild:
    def test_max_indexing_threads_equivalent(self):
        # threshold > 0: the optimizer (run during upsert) builds indexes
        # itself, through the shared parallel build path
        serial = make_collection(max_indexing_threads=1, threshold=50)
        threaded = make_collection(max_indexing_threads=4, threshold=50)
        assert any(seg.is_indexed for seg in serial.segments)
        assert any(seg.is_indexed for seg in threaded.segments)
        assert search_keys(serial, queries()) == search_keys(threaded, queries())


class TestBuildSegmentIndexes:
    def test_empty_list(self):
        report = build_segment_indexes([], "hnsw", max_workers=4)
        assert report.segments == 0
        assert report.mode == "serial"

    def test_installs_in_segment_order(self):
        col = make_collection()
        segments = list(col.segments)
        for seg in segments:
            seg.seal()
        report = build_segment_indexes(segments, "hnsw", max_workers=4)
        assert report.mode == "threads"
        assert all(seg.index is not None for seg in segments)

    @pytest.mark.parametrize("use_processes", [False, True])
    def test_modes_match_serial(self, use_processes):
        base = make_collection()
        other = make_collection()
        for col in (base, other):
            for seg in col.segments:
                seg.seal()
        build_segment_indexes(list(base.segments), "hnsw", max_workers=1)
        build_segment_indexes(
            list(other.segments), "hnsw", max_workers=2, use_processes=use_processes
        )
        assert search_keys(base, queries()) == search_keys(other, queries())
