"""Cluster extras: aliases, delete-by-filter, predicated shard routing,
collection-level count/delete_by_filter."""

import numpy as np
import pytest

from repro.core import (
    Collection,
    CollectionConfig,
    Distance,
    FieldMatch,
    FieldRange,
    Filter,
    HasId,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)
from repro.core.cluster import Cluster
from repro.core.errors import CollectionExistsError, CollectionNotFoundError
from repro.core.transport import InstrumentedTransport, LocalTransport
from repro.core.worker import Worker

DIM = 8


def config(name="c"):
    return CollectionConfig(
        name, VectorParams(size=DIM, distance=Distance.COSINE),
        optimizer=OptimizerConfig(indexing_threshold=0),
    )


def points(n, seed=0):
    rng = np.random.default_rng(seed)
    return [PointStruct(id=i, vector=rng.normal(size=DIM), payload={"g": i % 4})
            for i in range(n)]


class TestAliases:
    def test_alias_resolves_everywhere(self):
        cluster = Cluster.with_workers(2)
        cluster.create_collection(config())
        cluster.upsert("c", points(40))
        cluster.create_alias("current", "c")
        assert cluster.count("current") == 40
        cluster.upsert("current", [PointStruct(id=1000, vector=np.ones(DIM))])
        assert cluster.retrieve("current", 1000).id == 1000
        hits = cluster.search("current", SearchRequest(vector=np.ones(DIM), limit=3))
        assert len(hits) == 3
        assert cluster.aliases() == {"current": "c"}

    def test_alias_name_collision(self):
        cluster = Cluster.with_workers(1)
        cluster.create_collection(config())
        with pytest.raises(CollectionExistsError):
            cluster.create_alias("c", "c")

    def test_alias_to_missing_collection(self):
        cluster = Cluster.with_workers(1)
        with pytest.raises(CollectionNotFoundError):
            cluster.create_alias("x", "ghost")

    def test_delete_alias(self):
        cluster = Cluster.with_workers(1)
        cluster.create_collection(config())
        cluster.create_alias("a", "c")
        cluster.delete_alias("a")
        with pytest.raises(CollectionNotFoundError):
            cluster.count("a")

    def test_drop_collection_drops_aliases(self):
        cluster = Cluster.with_workers(1)
        cluster.create_collection(config())
        cluster.create_alias("a", "c")
        cluster.drop_collection("a")  # dropping via alias
        assert cluster.aliases() == {}
        assert cluster.collection_names() == []


class TestDeleteByFilter:
    def test_collection_level(self):
        col = Collection(config())
        col.upsert(points(40))
        removed = col.delete_by_filter(FieldMatch("g", 1))
        assert removed == 10
        assert len(col) == 30
        assert col.count(FieldMatch("g", 1)) == 0
        assert col.count() == 30

    def test_collection_count_with_filter(self):
        col = Collection(config())
        col.upsert(points(40))
        assert col.count(Filter(must=[FieldRange("g", gte=2)])) == 20

    def test_cluster_level(self):
        cluster = Cluster.with_workers(4)
        cluster.create_collection(config())
        cluster.upsert("c", points(80))
        removed = cluster.delete_by_filter("c", FieldMatch("g", 0))
        assert removed == 20
        assert cluster.count("c") == 60

    def test_cluster_delete_by_filter_respects_replication(self):
        cluster = Cluster.with_workers(3)
        cfg = config().with_(replication_factor=2)
        cluster.create_collection(cfg)
        cluster.upsert("c", points(60))
        cluster.delete_by_filter("c", FieldMatch("g", 3))
        # every replica agrees
        state = cluster._state("c")
        for shard in range(state.plan.shard_number):
            counts = {
                cluster.transport.call(w, "count", "c", shard)
                for w in state.plan.workers_for(shard)
            }
            assert len(counts) == 1


class TestPredicatedRouting:
    def _instrumented_cluster(self):
        inner = LocalTransport()
        cluster = Cluster(InstrumentedTransport(inner))
        for i in range(4):
            cluster.add_worker(Worker(f"w{i}"))
        cluster.create_collection(config())
        cluster.upsert("c", points(200))
        return cluster

    def test_has_id_narrows_fanout(self):
        cluster = self._instrumented_cluster()
        cluster.transport.stats.reset()
        target_id = 7
        hits = cluster.search(
            "c", SearchRequest(vector=np.ones(DIM), limit=1, filter=HasId([target_id]))
        )
        assert [h.id for h in hits] == [target_id]
        # only the single owning shard's worker was contacted
        assert cluster.transport.stats.calls_by_method.get("search", 0) == 1

    def test_has_id_inside_must(self):
        cluster = self._instrumented_cluster()
        cluster.transport.stats.reset()
        flt = Filter(must=[HasId([3, 5, 9])])
        hits = cluster.search("c", SearchRequest(vector=np.ones(DIM), limit=3, filter=flt))
        assert {h.id for h in hits} == {3, 5, 9}
        assert cluster.transport.stats.calls_by_method["search"] <= 3

    def test_non_predicated_broadcasts(self):
        cluster = self._instrumented_cluster()
        cluster.transport.stats.reset()
        cluster.search("c", SearchRequest(vector=np.ones(DIM), limit=5))
        assert cluster.transport.stats.calls_by_method["search"] == 4

    def test_payload_filter_still_broadcasts(self):
        """Only id-pinned filters can prefilter shards; payload predicates
        must still broadcast (matches footnote 4's description)."""
        cluster = self._instrumented_cluster()
        cluster.transport.stats.reset()
        cluster.search(
            "c", SearchRequest(vector=np.ones(DIM), limit=5, filter=FieldMatch("g", 1))
        )
        assert cluster.transport.stats.calls_by_method["search"] == 4
