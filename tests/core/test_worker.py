"""Worker RPC-surface tests."""

import numpy as np
import pytest

from repro.core.errors import BadRequestError, CollectionNotFoundError
from repro.core.types import (
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)
from repro.core.worker import Worker

DIM = 8
CFG = CollectionConfig(
    "col", VectorParams(size=DIM, distance=Distance.COSINE),
    optimizer=OptimizerConfig(indexing_threshold=0),
)


def points(n, start=0):
    rng = np.random.default_rng(start)
    return [PointStruct(id=start + i, vector=rng.normal(size=DIM)) for i in range(n)]


@pytest.fixture
def worker():
    w = Worker("w0", node_id="node-0")
    w.create_shard("col", 0, CFG)
    return w


class TestShardLifecycle:
    def test_create_and_drop(self, worker):
        assert worker.has_shard("col", 0)
        worker.create_shard("col", 1, CFG)
        assert worker.shard_ids("col") == [0, 1]
        worker.drop_shard("col", 1)
        assert worker.shard_ids("col") == [0]

    def test_duplicate_create_rejected(self, worker):
        with pytest.raises(BadRequestError):
            worker.create_shard("col", 0, CFG)

    def test_missing_shard_raises(self, worker):
        with pytest.raises(CollectionNotFoundError):
            worker.count("col", 99)


class TestReadWrite:
    def test_upsert_count_search(self, worker):
        worker.upsert("col", 0, points(30))
        assert worker.count("col", 0) == 30
        assert worker.stats.vectors_inserted == 30
        assert worker.stats.batches_received == 1
        target = worker.retrieve("col", 0, 7, with_vector=True).vector
        hits = worker.search("col", [0], SearchRequest(vector=target, limit=1))
        assert hits[0].id == 7
        assert hits[0].shard_id == 0

    def test_search_multiple_shards(self, worker):
        worker.create_shard("col", 1, CFG)
        worker.upsert("col", 0, points(10))
        worker.upsert("col", 1, points(10, start=100))
        q = np.random.default_rng(1).normal(size=DIM)
        hits = worker.search("col", [0, 1], SearchRequest(vector=q, limit=20))
        shard_ids = {h.shard_id for h in hits}
        assert shard_ids == {0, 1}

    def test_search_batch(self, worker):
        worker.upsert("col", 0, points(20))
        qs = np.random.default_rng(2).normal(size=(3, DIM))
        out = worker.search_batch("col", [0], [SearchRequest(vector=q, limit=5) for q in qs])
        assert len(out) == 3 and all(len(hits) == 5 for hits in out)
        assert worker.stats.queries_served >= 3

    def test_delete_and_payload(self, worker):
        worker.upsert("col", 0, points(5))
        worker.delete("col", 0, [2])
        assert worker.count("col", 0) == 4
        worker.set_payload("col", 0, 3, {"x": 1})
        assert worker.retrieve("col", 0, 3).payload == {"x": 1}

    def test_scroll(self, worker):
        worker.upsert("col", 0, points(15))
        page, nxt = worker.scroll("col", 0, limit=10)
        assert len(page) == 10 and nxt == 10

    def test_contains(self, worker):
        worker.upsert("col", 0, points(3))
        assert worker.contains("col", 0, 1)
        assert not worker.contains("col", 0, 99)


class TestMaintenance:
    def test_build_index_records_stats(self, worker):
        worker.upsert("col", 0, points(50))
        report = worker.build_index("col", 0)
        assert report.vectors_indexed == 50
        assert worker.stats.index_builds == [("col", 0, 50)]

    def test_info(self, worker):
        worker.upsert("col", 0, points(5))
        info = worker.info("col", 0)
        assert info.points_count == 5

    def test_ping(self, worker):
        assert worker.ping() == "w0"


class TestTransfer:
    def test_transfer_roundtrip(self, worker):
        worker.upsert("col", 0, points(12))
        exported = worker.transfer_shard_out("col", 0)
        assert len(exported) == 12
        other = Worker("w1")
        moved = other.transfer_shard_in("col", 0, CFG, exported)
        assert moved == 12
        assert other.count("col", 0) == 12
        # payload/vector fidelity
        a = worker.retrieve("col", 0, 3, with_vector=True)
        b = other.retrieve("col", 0, 3, with_vector=True)
        assert np.allclose(a.vector, b.vector)
