"""Property: ``Segment.search_batch(qs, k)[i] == Segment.search(qs[i], k)``.

Holds bit-for-bit on both the flat-scan path and the HNSW path (compiled
CSR batch entry): HNSW reuses the exact per-query traversal, and the flat
batch scores each query with the same GEMV kernel as the single path (the
shared gather is what the batch amortizes).  Bit-identity is what lets the
query coalescer merge independent callers without changing their results.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.segment import Segment
from repro.core.types import (
    CollectionConfig,
    Distance,
    HnswConfig,
    OptimizerConfig,
    PointStruct,
    VectorParams,
)

DIM = 8
N = 200

finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, width=32)
query_batches = arrays(
    np.float32, st.tuples(st.integers(1, 6), st.just(DIM)), elements=finite_floats
)


def make_segment(distance: Distance, indexed: bool) -> Segment:
    config = CollectionConfig(
        "prop",
        VectorParams(size=DIM, distance=distance),
        hnsw=HnswConfig(m=8, ef_construct=32),
        optimizer=OptimizerConfig(indexing_threshold=0),
    )
    seg = Segment(config)
    rng = np.random.default_rng(17)
    vectors = rng.normal(size=(N, DIM)).astype(np.float32)
    seg.upsert_batch(
        [
            PointStruct(id=i, vector=vectors[i], payload={"bucket": i % 5})
            for i in range(N)
        ]
    )
    if indexed:
        seg.seal()
        seg.build_index("hnsw")
    return seg


_SEGMENTS = {
    (d, indexed): make_segment(d, indexed)
    for d in (Distance.COSINE, Distance.EUCLID)
    for indexed in (False, True)
}


def hit_keys(hits):
    return [(h.id, h.score) for h in hits]


@given(query_batches)
@settings(max_examples=30, deadline=None)
def test_hnsw_batch_equals_single(qs):
    for distance in (Distance.COSINE, Distance.EUCLID):
        seg = _SEGMENTS[(distance, True)]
        batch = seg.search_batch(qs, 5)
        for q, hits in zip(qs, batch):
            assert hit_keys(hits) == hit_keys(seg.search(q, 5))


@given(query_batches)
@settings(max_examples=30, deadline=None)
def test_flat_batch_equals_single(qs):
    for distance in (Distance.COSINE, Distance.EUCLID):
        seg = _SEGMENTS[(distance, False)]
        batch = seg.search_batch(qs, 5)
        for q, hits in zip(qs, batch):
            assert hit_keys(hits) == hit_keys(seg.search(q, 5))


def test_hnsw_batch_equals_single_with_ef_and_threshold():
    """ef / score_threshold used to force the per-query fallback; the batch
    path must now honour them identically."""
    seg = _SEGMENTS[(Distance.COSINE, True)]
    qs = np.random.default_rng(23).normal(size=(8, DIM)).astype(np.float32)
    batch = seg.search_batch(qs, 5, ef=200, score_threshold=0.1)
    for q, hits in zip(qs, batch):
        assert hit_keys(hits) == hit_keys(seg.search(q, 5, ef=200, score_threshold=0.1))


def test_hnsw_batch_equals_single_with_filter():
    from repro.core.filters import FieldMatch

    seg = _SEGMENTS[(Distance.COSINE, True)]
    qs = np.random.default_rng(29).normal(size=(8, DIM)).astype(np.float32)
    flt = FieldMatch("bucket", 2)
    batch = seg.search_batch(qs, 5, flt=flt, with_payload=True)
    for q, hits in zip(qs, batch):
        single = seg.search(q, 5, flt=flt, with_payload=True)
        assert hit_keys(hits) == hit_keys(single)
        assert all(h.payload["bucket"] == 2 for h in hits)
