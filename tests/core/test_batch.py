"""Columnar Batch wire-format tests (the §3.2 conversion object)."""

import numpy as np
import pytest

from repro.core import (
    Collection,
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)
from repro.core.batch import Batch
from repro.core.cluster import Cluster
from repro.core.errors import BadRequestError, DimensionMismatchError

DIM = 8


def config(name="b"):
    return CollectionConfig(
        name, VectorParams(size=DIM, distance=Distance.COSINE),
        optimizer=OptimizerConfig(indexing_threshold=0),
    )


def points(n, start=0, seed=0):
    rng = np.random.default_rng(seed)
    return [
        PointStruct(id=start + i, vector=rng.normal(size=DIM), payload={"i": start + i})
        for i in range(n)
    ]


class TestBatchObject:
    def test_from_points_roundtrip(self):
        pts = points(10)
        batch = Batch.from_points(pts)
        assert len(batch) == 10 and batch.dim == DIM
        back = batch.to_points()
        assert [p.id for p in back] == [p.id for p in pts]
        assert np.allclose(back[3].as_array(), pts[3].as_array())
        assert back[3].payload == {"i": 3}

    def test_empty_rejected(self):
        with pytest.raises(BadRequestError):
            Batch.from_points([])

    def test_from_arrays_validates(self):
        ids = np.arange(5)
        vecs = np.zeros((5, DIM), dtype=np.float32)
        batch = Batch.from_arrays(ids, vecs)
        assert len(batch) == 5
        with pytest.raises(BadRequestError):
            Batch.from_arrays(np.arange(4), vecs)  # length mismatch

    def test_duplicate_ids_rejected(self):
        with pytest.raises(BadRequestError):
            Batch.from_arrays([1, 1], np.zeros((2, DIM), dtype=np.float32))

    def test_dim_check(self):
        batch = Batch.from_points(points(3))
        with pytest.raises(DimensionMismatchError):
            batch.validate(expected_dim=DIM + 1)

    def test_split(self):
        batch = Batch.from_points(points(6))
        parts = batch.split({0: np.array([0, 2, 4]), 1: np.array([1, 3, 5])})
        assert parts[0].ids.tolist() == [0, 2, 4]
        assert parts[1].payloads[0] == {"i": 1}
        assert np.allclose(parts[0].vectors[1], batch.vectors[2])

    def test_nbytes(self):
        batch = Batch.from_points(points(4))
        assert batch.nbytes == 4 * 8 + 4 * DIM * 4


class TestColumnarUpsert:
    def test_collection_columnar_equals_per_point(self):
        pts = points(50, seed=2)
        a = Collection(config("a"))
        a.upsert(pts)
        b = Collection(config("b"))
        b.upsert_columnar(Batch.from_points(pts))
        assert len(a) == len(b) == 50
        q = np.random.default_rng(3).normal(size=DIM)
        ha = [h.id for h in a.search(SearchRequest(vector=q, limit=10))]
        hb = [h.id for h in b.search(SearchRequest(vector=q, limit=10))]
        assert ha == hb
        assert b.retrieve(7).payload == {"i": 7}

    def test_columnar_overwrite_path(self):
        col = Collection(config())
        col.upsert_columnar(Batch.from_points(points(10)))
        # second batch overlaps ids 5..14
        col.upsert_columnar(Batch.from_points(points(10, start=5, seed=9)))
        assert len(col) == 15
        # overwritten vector took the new value
        new_vec = points(10, start=5, seed=9)[0].as_array()
        new_vec = new_vec / np.linalg.norm(new_vec)
        assert np.allclose(col.retrieve(5, with_vector=True).vector, new_vec, atol=1e-5)

    def test_type_and_dim_guards(self):
        col = Collection(config())
        with pytest.raises(TypeError):
            col.upsert_columnar([1, 2, 3])
        bad = Batch.from_arrays([1], np.zeros((1, DIM + 2), dtype=np.float32))
        with pytest.raises(DimensionMismatchError):
            col.upsert_columnar(bad)

    def test_cluster_columnar(self):
        cluster = Cluster.with_workers(4)
        cluster.create_collection(config("c"))
        pts = points(120, seed=4)
        cluster.upsert_columnar("c", Batch.from_points(pts))
        assert cluster.count("c") == 120
        rec = cluster.retrieve("c", 77)
        assert rec.payload == {"i": 77}
        q = np.random.default_rng(5).normal(size=DIM)
        # agrees with per-point ingestion
        ref = Cluster.with_workers(4)
        ref.create_collection(config("c"))
        ref.upsert("c", pts)
        a = [h.id for h in cluster.search("c", SearchRequest(vector=q, limit=10))]
        b = [h.id for h in ref.search("c", SearchRequest(vector=q, limit=10))]
        assert a == b

    def test_columnar_wal_replay(self, tmp_path):
        from repro.core import WalConfig

        cfg = config("w").with_(wal=WalConfig(enabled=True, path=str(tmp_path / "w.wal")))
        col = Collection(cfg)
        col.upsert_columnar(Batch.from_points(points(20)))
        col.close()
        revived = Collection(cfg)
        assert len(revived) == 20
        revived.close()


from hypothesis import given, settings
from hypothesis import strategies as st


@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=50, unique=True))
@settings(max_examples=30, deadline=None)
def test_batch_roundtrip_property(ids):
    """from_points(to_points(b)) preserves ids, vectors, payloads exactly."""
    rng = np.random.default_rng(len(ids))
    pts = [
        PointStruct(id=i, vector=rng.normal(size=DIM).astype(np.float32),
                    payload={"k": int(i)})
        for i in ids
    ]
    batch = Batch.from_points(pts)
    back = Batch.from_points(batch.to_points())
    assert np.array_equal(batch.ids, back.ids)
    assert np.allclose(batch.vectors, back.vectors)
    assert batch.payloads == back.payloads
