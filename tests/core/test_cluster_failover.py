"""Failure-handling tests for the cluster: retries, failover, degraded
reads, breaker integration, write partial-acks, and the concurrency
regressions fixed alongside (round-robin counter, fault-injector locking,
rebalance export shadowing)."""

import threading

import numpy as np
import pytest

from repro.core import (
    CollectionConfig,
    Distance,
    HasId,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    UpdateStatus,
    VectorParams,
)
from repro.core.cluster import Cluster
from repro.core.errors import NoReplicaAvailableError, RequestTimeoutError
from repro.core.failover import BreakerState, HealthTracker, RetryPolicy
from repro.core.transport import (
    FaultInjectingTransport,
    InstrumentedTransport,
    LocalTransport,
)
from repro.core.worker import Worker

DIM = 8


def config(name="papers", **kwargs):
    defaults = dict(optimizer=OptimizerConfig(indexing_threshold=0))
    defaults.update(kwargs)
    return CollectionConfig(name, VectorParams(size=DIM, distance=Distance.COSINE), **defaults)


def points(n, start=0, seed=0):
    rng = np.random.default_rng(seed)
    return [
        PointStruct(id=start + i, vector=rng.normal(size=DIM), payload={"i": start + i})
        for i in range(n)
    ]


def faulty_cluster(n_workers, *, advertise_failures=True, **cluster_kwargs):
    faulty = FaultInjectingTransport(
        LocalTransport(), advertise_failures=advertise_failures
    )
    cluster = Cluster(faulty, **cluster_kwargs)
    for i in range(n_workers):
        cluster.add_worker(Worker(f"w{i}"))
    return cluster, faulty


class TestReplicaFailover:
    def test_silent_death_fails_over_bit_identical(self):
        """With advertise_failures=False the coordinator only learns of the
        death when a call raises — the failover path must still produce the
        same results as the healthy cluster."""
        cluster, faulty = faulty_cluster(3, advertise_failures=False)
        cluster.create_collection(config(replication_factor=2))
        cluster.upsert("papers", points(90))
        q = np.ones(DIM)
        baseline = [h.id for h in cluster.search("papers", SearchRequest(vector=q, limit=10))]
        faulty.fail_worker("w1")
        after = cluster.search("papers", SearchRequest(vector=q, limit=10))
        assert [h.id for h in after] == baseline
        assert not after.degraded
        assert cluster.failover_stats.failovers > 0

    def test_point_reads_fail_over(self):
        cluster, faulty = faulty_cluster(3, advertise_failures=False)
        cluster.create_collection(config(replication_factor=2))
        cluster.upsert("papers", points(60))
        faulty.fail_worker("w0")
        assert cluster.count("papers") == 60
        assert cluster.retrieve("papers", 17).payload == {"i": 17}
        page, _ = cluster.scroll("papers", limit=10)
        assert [r.id for r in page] == list(range(10))

    def test_breaker_opens_then_heals(self):
        health = HealthTracker(failure_threshold=2, reset_timeout_s=0.0)
        cluster, faulty = faulty_cluster(
            3, advertise_failures=False, health=health
        )
        cluster.create_collection(config(replication_factor=2))
        cluster.upsert("papers", points(60))
        faulty.fail_worker("w1")
        q = np.ones(DIM)
        for _ in range(4):
            cluster.search("papers", SearchRequest(vector=q, limit=5))
        assert health.state("w1") is BreakerState.OPEN
        assert cluster.failover_stats.breaker_opens >= 1
        faulty.heal_worker("w1")
        # Cooldown of 0: the next resolution half-opens, probes, and closes.
        cluster.search("papers", SearchRequest(vector=q, limit=5))
        assert health.state("w1") is BreakerState.CLOSED
        assert cluster.failover_stats.breaker_closes >= 1

    def test_retry_recovers_transient_faults(self):
        faulty = FaultInjectingTransport(LocalTransport(), fail_every=7)
        cluster = Cluster(faulty, retry_policy=RetryPolicy(base_backoff_s=0.0))
        for i in range(3):
            cluster.add_worker(Worker(f"w{i}"))
        cluster.create_collection(config())
        cluster.upsert("papers", points(90))
        q = np.ones(DIM)
        for _ in range(10):
            hits = cluster.search("papers", SearchRequest(vector=q, limit=5))
            assert len(hits) == 5
        assert cluster.failover_stats.retries > 0

    def test_per_call_timeout_fails_over_to_replica(self):
        cluster, faulty = faulty_cluster(
            2,
            retry_policy=RetryPolicy(
                max_attempts=1, base_backoff_s=0.0, timeout_s=0.05
            ),
        )
        cluster.create_collection(config(shard_number=2, replication_factor=2))
        cluster.upsert("papers", points(40))
        q = np.ones(DIM)
        baseline = [h.id for h in cluster.search("papers", SearchRequest(vector=q, limit=10))]
        faulty.set_delay("w0", 0.5)
        after = cluster.search("papers", SearchRequest(vector=q, limit=10))
        assert [h.id for h in after] == baseline
        assert cluster.failover_stats.timeouts > 0

    def test_timeout_without_replica_raises_timeout_error(self):
        cluster, faulty = faulty_cluster(
            1,
            retry_policy=RetryPolicy(
                max_attempts=1, base_backoff_s=0.0, timeout_s=0.05
            ),
        )
        cluster.create_collection(config())
        cluster.upsert("papers", points(10))
        faulty.set_delay("w0", 0.5)
        with pytest.raises((RequestTimeoutError, NoReplicaAvailableError)):
            cluster.retrieve("papers", 0)


class TestDegradedReads:
    def test_allow_partial_returns_flagged_subset(self):
        cluster, faulty = faulty_cluster(2)
        cluster.create_collection(config(replication_factor=1))
        cluster.upsert("papers", points(40))
        faulty.fail_worker("w0")
        result = cluster.search(
            "papers", SearchRequest(vector=np.ones(DIM), limit=10, allow_partial=True)
        )
        assert result.degraded
        assert result.shards_answered < result.shards_total
        surviving = set(cluster._workers["w1"].shard_ids("papers"))
        assert {h.shard_id for h in result} <= surviving
        assert cluster.failover_stats.degraded_queries == 1

    def test_default_still_raises(self):
        cluster, faulty = faulty_cluster(2)
        cluster.create_collection(config(replication_factor=1))
        cluster.upsert("papers", points(40))
        faulty.fail_worker("w0")
        with pytest.raises(NoReplicaAvailableError):
            cluster.search("papers", SearchRequest(vector=np.ones(DIM), limit=10))

    def test_batch_degrades_only_if_all_requests_allow(self):
        cluster, faulty = faulty_cluster(2)
        cluster.create_collection(config(replication_factor=1))
        cluster.upsert("papers", points(40))
        faulty.fail_worker("w0")
        q = np.ones(DIM)
        allowing = [SearchRequest(vector=q, limit=5, allow_partial=True) for _ in range(2)]
        out = cluster.search_batch("papers", allowing)
        assert all(r.degraded for r in out)
        mixed = [
            SearchRequest(vector=q, limit=5, allow_partial=True),
            SearchRequest(vector=q, limit=5),
        ]
        with pytest.raises(NoReplicaAvailableError):
            cluster.search_batch("papers", mixed)

    def test_healthy_result_not_degraded(self):
        cluster, _ = faulty_cluster(2)
        cluster.create_collection(config())
        cluster.upsert("papers", points(40))
        result = cluster.search("papers", SearchRequest(vector=np.ones(DIM), limit=5))
        assert not result.degraded
        assert result.shards_answered == result.shards_total == 2


class TestWritePartialAck:
    def test_write_with_dead_replica_acknowledged(self):
        cluster, faulty = faulty_cluster(3)
        cluster.create_collection(config(replication_factor=2))
        faulty.fail_worker("w1")
        result = cluster.upsert("papers", points(30))
        assert result.status is UpdateStatus.ACKNOWLEDGED
        # The survivors hold the data; reads fail over around the dead
        # replica (which permanently missed the write — there is no
        # anti-entropy repair, hence ACKNOWLEDGED rather than COMPLETED).
        assert cluster.count("papers") == 30

    def test_healthy_write_completed(self):
        cluster, _ = faulty_cluster(3)
        cluster.create_collection(config(replication_factor=2))
        result = cluster.upsert("papers", points(30))
        assert result.status is UpdateStatus.COMPLETED

    def test_write_with_no_live_replica_raises(self):
        cluster, faulty = faulty_cluster(1)
        cluster.create_collection(config())
        faulty.fail_worker("w0")
        with pytest.raises(NoReplicaAvailableError):
            cluster.upsert("papers", points(10))


class TestEmptyPredicate:
    def test_empty_hasid_returns_empty_without_fanout(self):
        inner = LocalTransport()
        cluster = Cluster(InstrumentedTransport(inner))
        for i in range(3):
            cluster.add_worker(Worker(f"w{i}"))
        cluster.create_collection(config())
        cluster.upsert("papers", points(30))
        cluster.transport.stats.reset()
        result = cluster.search(
            "papers",
            SearchRequest(vector=np.ones(DIM), limit=5, filter=HasId(frozenset())),
        )
        assert list(result) == []
        assert result.shards_total == 0 and not result.degraded
        assert cluster.transport.stats.calls_by_method.get("search") is None


class TestRebalanceWithDeadPrimary:
    def test_remove_dead_worker_pulls_from_surviving_replica(self):
        """A worker that dies before it can export its shards must not leave
        empty replicas behind when surviving replicas still hold the data
        (regression: an empty failed export used to shadow the
        surviving-replica pull)."""
        cluster, faulty = faulty_cluster(3)
        cluster.create_collection(config(replication_factor=2))
        cluster.upsert("papers", points(90))
        faulty.fail_worker("w0")
        cluster.remove_worker("w0")
        assert cluster.count("papers") == 90
        # Every replica of every shard holds the same non-empty copy.
        state = cluster._state("papers")
        for shard in range(state.plan.shard_number):
            counts = [
                cluster.transport.call(w, "count", "papers", shard)
                for w in state.plan.workers_for(shard)
            ]
            assert len(set(counts)) == 1 and counts[0] > 0

    def test_remove_worker_forgets_breaker_state(self):
        health = HealthTracker(failure_threshold=1, reset_timeout_s=60.0)
        cluster, faulty = faulty_cluster(3, advertise_failures=False, health=health)
        cluster.create_collection(config(replication_factor=2))
        cluster.upsert("papers", points(30))
        faulty.fail_worker("w2")
        for _ in range(2):
            cluster.search(
                "papers", SearchRequest(vector=np.ones(DIM), limit=5)
            )
        assert health.state("w2") is BreakerState.OPEN
        faulty.heal_worker("w2")
        cluster.remove_worker("w2")
        assert "w2" not in health.states()


class TestConcurrencyRegressions:
    def test_entry_worker_round_robin_exact_under_threads(self):
        """The round-robin counter must hand out exact per-worker shares even
        under concurrent callers (regression: unguarded ``+= 1``)."""
        cluster = Cluster.with_workers(4)
        n_threads, per_thread = 8, 100
        picks: list[list[str]] = [[] for _ in range(n_threads)]

        def run(idx: int):
            for _ in range(per_thread):
                picks[idx].append(cluster._entry_worker())

        threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        flat = [w for chunk in picks for w in chunk]
        assert len(flat) == n_threads * per_thread
        counts = {w: flat.count(w) for w in cluster.worker_ids}
        assert all(c == n_threads * per_thread // 4 for c in counts.values())

    def test_fault_injector_survives_concurrent_kill_heal(self):
        """fail/heal/call/is_reachable hammered from many threads must not
        corrupt state or raise anything but the injected faults
        (regression: unlocked ``fail_workers`` mutation)."""
        cluster, faulty = faulty_cluster(2, advertise_failures=False)
        cluster.create_collection(config(replication_factor=2))
        cluster.upsert("papers", points(40))
        stop = threading.Event()
        errors: list[BaseException] = []

        def chaos():
            while not stop.is_set():
                faulty.fail_worker("w0")
                faulty.is_reachable("w0")
                faulty.heal_worker("w0")

        def reader():
            q = np.ones(DIM)
            try:
                for _ in range(50):
                    cluster.search(
                        "papers",
                        SearchRequest(vector=q, limit=5, allow_partial=True),
                    )
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        chaos_threads = [threading.Thread(target=chaos) for _ in range(2)]
        readers = [threading.Thread(target=reader) for _ in range(4)]
        for t in chaos_threads + readers:
            t.start()
        for t in readers:
            t.join()
        stop.set()
        for t in chaos_threads:
            t.join()
        assert errors == []
