"""Named-vector (multi-space) collection tests."""

import numpy as np
import pytest

from repro.core import Distance, FieldMatch, VectorParams
from repro.core.errors import BadRequestError
from repro.core.multivector import (
    MultiVectorCollection,
    MultiVectorPoint,
    rrf_fuse,
)
from repro.core.types import ScoredPoint

TITLE_DIM = 8
BODY_DIM = 16


def make(n=50, seed=0) -> MultiVectorCollection:
    col = MultiVectorCollection(
        "papers",
        {
            "title": VectorParams(size=TITLE_DIM, distance=Distance.COSINE),
            "body": VectorParams(size=BODY_DIM, distance=Distance.COSINE),
        },
    )
    rng = np.random.default_rng(seed)
    col.upsert([
        MultiVectorPoint(
            id=i,
            vectors={
                "title": rng.normal(size=TITLE_DIM),
                "body": rng.normal(size=BODY_DIM),
            },
            payload={"group": i % 3},
        )
        for i in range(n)
    ])
    return col


class TestBasics:
    def test_requires_spaces(self):
        with pytest.raises(BadRequestError):
            MultiVectorCollection("x", {})

    def test_len_and_spaces(self):
        col = make()
        assert len(col) == 50
        assert col.space_names == ["title", "body"]

    def test_missing_space_vector_rejected(self):
        col = make(1)
        with pytest.raises(BadRequestError):
            col.upsert([MultiVectorPoint(id=99, vectors={"title": np.ones(TITLE_DIM)})])

    def test_unknown_space_rejected(self):
        col = make(5)
        with pytest.raises(BadRequestError):
            col.search(np.ones(TITLE_DIM), using="abstract")

    def test_retrieve_with_all_vectors(self):
        col = make(5)
        rec = col.retrieve(3, with_vectors=True)
        assert rec.payload == {"group": 0}
        assert rec.vectors["title"].shape == (TITLE_DIM,)
        assert rec.vectors["body"].shape == (BODY_DIM,)

    def test_delete_removes_from_all_spaces(self):
        col = make(10)
        col.delete([4])
        assert len(col) == 9
        hits = col.search(np.ones(BODY_DIM), using="body", limit=10)
        assert 4 not in [h.id for h in hits]

    def test_set_payload(self):
        col = make(5)
        col.set_payload(2, {"group": 99})
        assert col.retrieve(2).payload == {"group": 99}


class TestSearch:
    def test_per_space_search_dimensions(self):
        col = make()
        title_hits = col.search(np.ones(TITLE_DIM), using="title", limit=5)
        body_hits = col.search(np.ones(BODY_DIM), using="body", limit=5)
        assert len(title_hits) == len(body_hits) == 5
        # different spaces rank differently (with overwhelming probability)
        assert [h.id for h in title_hits] != [h.id for h in body_hits]

    def test_self_query_per_space(self):
        col = make()
        rec = col.retrieve(7, with_vectors=True)
        assert col.search(rec.vectors["body"], using="body", limit=1)[0].id == 7
        assert col.search(rec.vectors["title"], using="title", limit=1)[0].id == 7

    def test_filter_on_primary_payload(self):
        col = make()
        hits = col.search(
            np.ones(TITLE_DIM), using="title", limit=5,
            filter=FieldMatch("group", 1), with_payload=True,
        )
        assert hits and all(h.payload["group"] == 1 for h in hits)

    def test_filter_on_secondary_space(self):
        col = make()
        hits = col.search(
            np.ones(BODY_DIM), using="body", limit=5,
            filter=FieldMatch("group", 2), with_payload=True,
        )
        assert hits and all(h.payload["group"] == 2 for h in hits)

    def test_index_build_all_spaces(self):
        col = make(200)
        col.build_index("hnsw")
        rec = col.retrieve(11, with_vectors=True)
        assert col.search(rec.vectors["body"], using="body", limit=1)[0].id == 11


class TestFusion:
    def test_rrf_basics(self):
        a = [ScoredPoint(id=1, score=0.9), ScoredPoint(id=2, score=0.5)]
        b = [ScoredPoint(id=2, score=0.8), ScoredPoint(id=3, score=0.4)]
        fused = rrf_fuse({"a": a, "b": b}, limit=3)
        assert fused[0].id == 2  # appears in both rankings
        assert {h.id for h in fused} == {1, 2, 3}

    def test_rrf_weights(self):
        a = [ScoredPoint(id=1, score=0.9)]
        b = [ScoredPoint(id=2, score=0.9)]
        fused = rrf_fuse({"a": a, "b": b}, weights={"a": 10.0, "b": 1.0}, limit=2)
        assert fused[0].id == 1

    def test_fused_search_end_to_end(self):
        col = make()
        rec = col.retrieve(13, with_vectors=True)
        fused = col.search_fused(
            {"title": rec.vectors["title"], "body": rec.vectors["body"]},
            limit=5, with_payload=True,
        )
        assert fused[0].id == 13  # tops both rankings
        assert fused[0].payload == {"group": 13 % 3}
