"""Integer-domain quantized scoring engine tests.

Covers the PR-7 acceptance properties:

* integer-domain scores match decode-then-score within the documented
  tolerance (|Δ| ≤ 1e-5 · max(1, |score|)) for all three distances
  (hypothesis property);
* quantized ``search_batch`` equals per-query ``search`` bit for bit
  (ids *and* scores), with and without rescore/filters/deletes;
* recall@10 under rescore is no worse than the pre-change decode-based
  quantized path on a seeded corpus;
* incremental correction terms equal recompute-from-scratch after
  upsert/delete/vacuum;
* a sealed segment runs HNSW traversal over quantized codes with exact
  rescore (quantization and indexing compose).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    CollectionConfig,
    Distance,
    QuantizationConfig,
    VectorParams,
)
from repro.core import distances
from repro.core.quantization import CodeStore, ScalarQuantizer, code_corrections
from repro.core.segment import Segment
from repro.core.types import PointStruct
from repro.core.filters import FieldMatch, Filter

DISTANCES = [Distance.DOT, Distance.COSINE, Distance.EUCLID]


def _config(distance, **quant_kwargs):
    return CollectionConfig(
        "q",
        VectorParams(size=32, distance=distance),
        quantization=QuantizationConfig(enabled=True, **quant_kwargs),
    )


def _seeded_segment(distance, n=800, dim=32, seed=5, payload_every=None):
    seg = Segment(_config(distance))
    rng = np.random.default_rng(seed)
    pts = []
    for i in range(n):
        payload = None
        if payload_every is not None:
            payload = {"bucket": "a" if i % payload_every == 0 else "b"}
        pts.append(PointStruct(id=i, vector=rng.normal(size=dim), payload=payload))
    seg.upsert_batch(pts)
    return seg


def _keys(hits):
    return [(h.id, h.score) for h in hits]


class TestIntegerDomainTolerance:
    """score_codes == decode-then-score within the documented tolerance."""

    @pytest.mark.parametrize("distance", DISTANCES)
    @given(data=arrays(np.float32, (24, 12),
                       elements=st.floats(-50, 50, allow_nan=False, width=32)),
           qrow=st.integers(0, 23))
    @settings(max_examples=25, deadline=None)
    def test_matches_decode_then_score(self, distance, data, qrow):
        q = ScalarQuantizer(quantile=1.0)
        q.train(data)
        codes = q.encode(data)
        sums, sq = code_corrections(codes)
        query = data[qrow]
        if distance is Distance.COSINE:
            query = distances.normalize(query)
        qq = q.encode_query(query)
        got = q.score_codes(codes, sums, sq, qq, distance)
        # Reference: decode both sides and score in float64, so the test
        # isolates integer-domain rounding from reference-kernel rounding.
        approx = codes.astype(np.float64) * q._scale + q._lo  # noqa: SLF001
        qhat = qq.codes.astype(np.float64) * qq.scale + qq.lo
        if distance is Distance.EUCLID:
            diff = approx - qhat
            ref = np.einsum("ij,ij->i", diff, diff)
        else:
            ref = approx @ qhat
        tol = 1e-5 * np.maximum(1.0, np.abs(ref))
        assert np.all(np.abs(got.astype(np.float64) - ref) <= tol)

    @pytest.mark.parametrize("distance", DISTANCES)
    def test_batch_equals_single_kernel_bitwise(self, distance):
        rng = np.random.default_rng(11)
        data = rng.normal(size=(500, 48)).astype(np.float32)
        q = ScalarQuantizer()
        q.train(data)
        codes = q.encode(data)
        sums, sq = code_corrections(codes)
        qqs = [q.encode_query(rng.normal(size=48).astype(np.float32)) for _ in range(7)]
        batch = q.score_codes_batch(codes, sums, sq, qqs, distance)
        for qq, col in zip(qqs, batch):
            single = q.score_codes(codes, sums, sq, qq, distance)
            assert np.array_equal(single, col)


class TestBatchBitIdentity:
    """Quantized ``search_batch`` == per-query ``search``, bit for bit."""

    @pytest.mark.parametrize("distance", DISTANCES)
    def test_plain(self, distance):
        seg = _seeded_segment(distance)
        seg.enable_quantization()
        rng = np.random.default_rng(17)
        queries = rng.normal(size=(9, 32)).astype(np.float32)
        single = [seg.search(q, 10) for q in queries]
        batch = seg.search_batch(queries, 10)
        for s, b in zip(single, batch):
            assert _keys(s) == _keys(b)

    def test_with_deletes_upserts_and_filter(self):
        seg = _seeded_segment(Distance.COSINE, payload_every=3)
        seg.enable_quantization()
        rng = np.random.default_rng(19)
        # Mutations after quantization: codes must stay offset-aligned.
        seg.upsert_batch(
            [PointStruct(id=1000 + i, vector=rng.normal(size=32),
                         payload={"bucket": "a"}) for i in range(25)]
        )
        seg.upsert(PointStruct(id=4, vector=rng.normal(size=32),
                               payload={"bucket": "a"}))
        for pid in (0, 9, 12):
            seg.delete(pid)
        flt = Filter(must=[FieldMatch(key="bucket", value="a")])
        queries = rng.normal(size=(6, 32)).astype(np.float32)
        single = [seg.search(q, 8, flt=flt) for q in queries]
        batch = seg.search_batch(queries, 8, flt=flt)
        for s, b in zip(single, batch):
            assert _keys(s) == _keys(b)
            assert all(h.id != 0 and h.id != 9 and h.id != 12 for h in s)

    def test_no_rescore_path(self):
        seg = _seeded_segment(Distance.EUCLID)
        seg.enable_quantization()
        rng = np.random.default_rng(23)
        queries = rng.normal(size=(5, 32)).astype(np.float32)
        single = [seg.search(q, 10, quantization_rescore=False) for q in queries]
        batch = seg.search_batch(queries, 10, quantization_rescore=False)
        for s, b in zip(single, batch):
            assert _keys(s) == _keys(b)


class TestRescoreRecall:
    """Recall@10 under rescore >= the pre-change decode-based quantized path."""

    @pytest.mark.parametrize("distance", DISTANCES)
    def test_recall_no_worse_than_decode_path(self, distance):
        seg = _seeded_segment(distance, n=1200)
        rng = np.random.default_rng(29)
        queries = [rng.normal(size=32).astype(np.float32) for _ in range(20)]
        exact = {i: {h.id for h in seg.search(q, 10)} for i, q in enumerate(queries)}
        seg.enable_quantization()
        quantizer = seg._quantizer  # noqa: SLF001 - reproducing the old path
        codes = seg._codes.view()  # noqa: SLF001
        new_hits = 0
        old_hits = 0
        for i, q in enumerate(queries):
            query = distances.normalize(q) if distance is Distance.COSINE else q
            new_ids = {h.id for h in seg.search(q, 10)}
            # Pre-change path: decode the full code matrix per query, score
            # in float, rescore the top-4k exactly.
            approx = quantizer.decode(codes)
            scores = distances.score_batch(approx, query, distance)
            idx, _ = distances.top_k(scores, 40, distance)
            cand = idx
            exact_scores = distances.score_batch(
                seg._arena.take(cand), query, distance  # noqa: SLF001
            )
            idx2, _ = distances.top_k(exact_scores, 10, distance)
            old_ids = {int(seg._ids.id_at(int(o))) for o in cand[idx2]}  # noqa: SLF001
            new_hits += len(new_ids & exact[i])
            old_hits += len(old_ids & exact[i])
        assert new_hits >= old_hits
        assert new_hits >= 0.9 * 10 * len(queries)


class TestIncrementalCorrections:
    """CodeStore corrections stay equal to recompute-from-scratch."""

    def _assert_corrections_fresh(self, seg):
        store = seg._codes  # noqa: SLF001
        quantizer = seg._quantizer  # noqa: SLF001
        arena_view = seg._arena.view()  # noqa: SLF001
        assert len(store) == arena_view.shape[0]
        expected_codes = quantizer.encode(arena_view)
        assert np.array_equal(store.view(), expected_codes)
        sums, sq = code_corrections(store.view())
        got_sums, got_sq = store.corrections()
        assert np.array_equal(sums, got_sums)
        assert np.array_equal(sq, got_sq)

    def test_after_upsert_delete_vacuum(self):
        seg = _seeded_segment(Distance.DOT, n=300)
        seg.enable_quantization()
        rng = np.random.default_rng(31)
        self._assert_corrections_fresh(seg)
        # fresh appends (batch + single) and an overwrite
        seg.upsert_batch(
            [PointStruct(id=500 + i, vector=rng.normal(size=32)) for i in range(40)]
        )
        seg.upsert(PointStruct(id=7, vector=rng.normal(size=32)))
        self._assert_corrections_fresh(seg)
        # deletes tombstone only; codes remain aligned with the arena
        for pid in range(0, 60, 2):
            seg.delete(pid)
        self._assert_corrections_fresh(seg)
        # vacuum rewrites into a fresh quantized segment
        fresh = seg.vacuum()
        assert fresh.is_quantized
        self._assert_corrections_fresh(fresh)
        assert len(fresh) == len(seg)

    def test_columnar_upsert_keeps_codes(self):
        seg = _seeded_segment(Distance.COSINE, n=200)
        seg.enable_quantization()
        rng = np.random.default_rng(37)
        ids = np.arange(900, 960, dtype=np.int64)
        vectors = rng.normal(size=(60, 32)).astype(np.float32)
        seg.upsert_columnar(ids, vectors, [None] * 60)
        self._assert_corrections_fresh(seg)

    _assert_corrections_fresh.__test__ = False


class TestHnswQuantizedComposition:
    """Sealed segments run HNSW traversal over codes with exact rescore."""

    @pytest.mark.parametrize("distance", DISTANCES)
    def test_indexed_and_quantized(self, distance):
        seg = _seeded_segment(distance, n=1500)
        seg.seal()
        seg.build_index("hnsw")
        exact = {h.id for h in seg.search(np.ones(32, dtype=np.float32), 10, exact=True)}
        seg.enable_quantization()
        assert seg.is_quantized and seg.is_indexed
        assert seg.index.supports_quantized_search
        hits = seg.search(np.ones(32, dtype=np.float32), 10)
        assert seg.index.quant_stats["searches"] == 1
        assert seg.index.quant_stats["rescored"] > 0
        recall = len({h.id for h in hits} & exact) / 10
        assert recall >= 0.8
        # Rescored scores are exact: re-derive them from the float vectors.
        for h in hits:
            vec = seg.retrieve(h.id, with_vector=True).vector
            q = np.ones(32, dtype=np.float32)
            if distance is Distance.COSINE:
                q = distances.normalize(q)
            if distance is Distance.EUCLID:
                expected = float(np.dot(vec - q, vec - q))
            else:
                expected = float(vec @ q)
            assert h.score == pytest.approx(expected, rel=1e-5)

    def test_quantize_then_index_attaches(self):
        seg = _seeded_segment(Distance.COSINE, n=600)
        seg.enable_quantization()
        seg.seal()
        seg.build_index("hnsw")
        assert seg.index.supports_quantized_search
        q = np.random.default_rng(41).normal(size=32).astype(np.float32)
        assert len(seg.search(q, 5)) == 5
        assert seg.index.quant_stats["searches"] == 1

    def test_batch_equals_single_through_index(self):
        seg = _seeded_segment(Distance.COSINE, n=900)
        seg.seal()
        seg.build_index("hnsw")
        seg.enable_quantization()
        rng = np.random.default_rng(43)
        queries = rng.normal(size=(5, 32)).astype(np.float32)
        single = [seg.search(q, 10) for q in queries]
        batch = seg.search_batch(queries, 10)
        for s, b in zip(single, batch):
            assert _keys(s) == _keys(b)

    def test_detach_falls_back_to_float_traversal(self):
        seg = _seeded_segment(Distance.DOT, n=500)
        seg.seal()
        seg.build_index("hnsw")
        seg.enable_quantization()
        q = np.random.default_rng(47).normal(size=32).astype(np.float32)
        quant_hits = seg.search(q, 10)
        seg.index.detach_quantization()
        assert not seg.index.supports_quantized_search
        float_hits = seg.search(q, 10)
        assert len(float_hits) == 10
        assert seg.index.quant_stats["searches"] == 1  # only the first search
        assert {h.id for h in quant_hits} == {h.id for h in float_hits}


class TestCodeStore:
    def test_validation_and_growth(self):
        with pytest.raises(ValueError):
            CodeStore(0)
        store = CodeStore(8)
        rng = np.random.default_rng(53)
        rows = rng.integers(0, 256, size=(300, 8)).astype(np.uint8)
        for start in range(0, 300, 37):
            store.extend(rows[start : start + 37])
        assert len(store) == 300
        assert np.array_equal(store.view(), rows)
        with pytest.raises(IndexError):
            store.overwrite(300, rows[0])
        with pytest.raises(ValueError):
            store.extend(np.zeros((2, 9), dtype=np.uint8))
        assert store.nbytes >= 300 * 8

    def test_take_and_partial_corrections(self):
        store = CodeStore(4)
        rows = np.arange(40, dtype=np.uint8).reshape(10, 4)
        store.extend(rows)
        offs = np.asarray([7, 2, 5], dtype=np.int64)
        assert np.array_equal(store.take(offs), rows[offs])
        sums, sq = store.corrections(offs)
        esums, esq = code_corrections(rows[offs])
        assert np.array_equal(sums, esums)
        assert np.array_equal(sq, esq)
