"""Cluster tests: sharding, broadcast-reduce, replication, rebalancing."""

import numpy as np
import pytest

from repro.core import (
    Collection,
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)
from repro.core.cluster import Cluster
from repro.core.errors import (
    ClusterConfigError,
    CollectionExistsError,
    CollectionNotFoundError,
    NoReplicaAvailableError,
)
from repro.core.transport import FaultInjectingTransport, InstrumentedTransport, LocalTransport
from repro.core.worker import Worker

DIM = 8


def config(name="papers", **kwargs):
    defaults = dict(optimizer=OptimizerConfig(indexing_threshold=0))
    defaults.update(kwargs)
    return CollectionConfig(name, VectorParams(size=DIM, distance=Distance.COSINE), **defaults)


def points(n, start=0, seed=0):
    rng = np.random.default_rng(seed)
    return [
        PointStruct(id=start + i, vector=rng.normal(size=DIM), payload={"i": start + i})
        for i in range(n)
    ]


class TestMembership:
    def test_with_workers_node_packing(self):
        cluster = Cluster.with_workers(8)
        nodes = {w.node_id for w in cluster.workers()}
        assert nodes == {"node-0", "node-1"}  # 4 workers per node

    def test_duplicate_worker_rejected(self):
        cluster = Cluster.with_workers(1)
        with pytest.raises(ClusterConfigError):
            cluster.add_worker(Worker("worker-0"))

    def test_empty_cluster_rejects_collection(self):
        cluster = Cluster()
        with pytest.raises(ClusterConfigError):
            cluster.create_collection(config())


class TestCollections:
    def test_default_one_shard_per_worker(self):
        cluster = Cluster.with_workers(4)
        state = cluster.create_collection(config())
        assert state.plan.shard_number == 4
        for w in cluster.workers():
            assert len(w.shard_ids("papers")) == 1

    def test_explicit_shard_number(self):
        cluster = Cluster.with_workers(2)
        state = cluster.create_collection(config(shard_number=6))
        assert state.plan.shard_number == 6

    def test_duplicate_collection(self):
        cluster = Cluster.with_workers(1)
        cluster.create_collection(config())
        with pytest.raises(CollectionExistsError):
            cluster.create_collection(config())

    def test_drop_collection(self):
        cluster = Cluster.with_workers(2)
        cluster.create_collection(config())
        cluster.drop_collection("papers")
        assert cluster.collection_names() == []
        with pytest.raises(CollectionNotFoundError):
            cluster.count("papers")


class TestDataPath:
    def test_upsert_and_count(self):
        cluster = Cluster.with_workers(4)
        cluster.create_collection(config())
        cluster.upsert("papers", points(200))
        assert cluster.count("papers") == 200

    def test_points_distributed_across_workers(self):
        cluster = Cluster.with_workers(4)
        cluster.create_collection(config())
        cluster.upsert("papers", points(400))
        per_worker = [
            sum(cluster.transport.call(w, "count", "papers", s)
                for s in cluster._workers[w].shard_ids("papers"))
            for w in cluster.worker_ids
        ]
        assert all(50 < c < 150 for c in per_worker)

    def test_retrieve_routes_to_owner(self):
        cluster = Cluster.with_workers(4)
        cluster.create_collection(config())
        cluster.upsert("papers", points(40))
        rec = cluster.retrieve("papers", 17)
        assert rec.id == 17 and rec.payload == {"i": 17}

    def test_delete_and_set_payload(self):
        cluster = Cluster.with_workers(3)
        cluster.create_collection(config())
        cluster.upsert("papers", points(30))
        cluster.delete("papers", [5, 6])
        assert cluster.count("papers") == 28
        cluster.set_payload("papers", 7, {"updated": True})
        assert cluster.retrieve("papers", 7).payload == {"updated": True}

    def test_scroll_global_order(self):
        cluster = Cluster.with_workers(3)
        cluster.create_collection(config())
        cluster.upsert("papers", points(30))
        page, nxt = cluster.scroll("papers", limit=12)
        assert [r.id for r in page] == list(range(12))
        assert nxt == 12


class TestBroadcastReduce:
    def test_distributed_equals_single_collection(self):
        """Broadcast-reduce over shards must equal one big collection."""
        data = points(300, seed=3)
        single = Collection(config("single"))
        single.upsert(data)
        cluster = Cluster.with_workers(4)
        cluster.create_collection(config())
        cluster.upsert("papers", data)
        rng = np.random.default_rng(5)
        for _ in range(10):
            q = rng.normal(size=DIM)
            expected = [h.id for h in single.search(SearchRequest(vector=q, limit=10))]
            got = [h.id for h in cluster.search("papers", SearchRequest(vector=q, limit=10))]
            assert got == expected

    def test_search_batch_matches_search(self):
        cluster = Cluster.with_workers(4)
        cluster.create_collection(config())
        cluster.upsert("papers", points(200))
        qs = np.random.default_rng(6).normal(size=(5, DIM))
        requests = [SearchRequest(vector=q, limit=5) for q in qs]
        batched = cluster.search_batch("papers", requests)
        for req, hits in zip(requests, batched):
            assert [h.id for h in hits] == [h.id for h in cluster.search("papers", req)]

    def test_hits_annotated_with_shard(self):
        cluster = Cluster.with_workers(4)
        cluster.create_collection(config())
        cluster.upsert("papers", points(200))
        hits = cluster.search("papers", SearchRequest(vector=np.ones(DIM), limit=20))
        assert {h.shard_id for h in hits} <= {0, 1, 2, 3}
        assert len({h.shard_id for h in hits}) > 1

    def test_one_transport_call_per_worker(self):
        inner = LocalTransport()
        cluster = Cluster(InstrumentedTransport(inner))
        for i in range(4):
            cluster.add_worker(Worker(f"w{i}"))
        cluster.create_collection(config())
        cluster.upsert("papers", points(100))
        cluster.transport.stats.reset()
        cluster.search("papers", SearchRequest(vector=np.ones(DIM), limit=5))
        assert cluster.transport.stats.calls_by_method.get("search") == 4


class TestReplication:
    def test_replicas_hold_copies(self):
        cluster = Cluster.with_workers(3)
        cluster.create_collection(config(replication_factor=2))
        cluster.upsert("papers", points(60))
        state = cluster._state("papers")
        for shard in range(state.plan.shard_number):
            counts = [
                cluster.transport.call(w, "count", "papers", shard)
                for w in state.plan.workers_for(shard)
            ]
            assert len(set(counts)) == 1 and counts[0] > 0

    def test_search_survives_worker_failure(self):
        inner = LocalTransport()
        faulty = FaultInjectingTransport(inner)
        cluster = Cluster(faulty)
        for i in range(3):
            cluster.add_worker(Worker(f"w{i}"))
        cluster.create_collection(config(replication_factor=2))
        cluster.upsert("papers", points(90))
        baseline = [h.id for h in cluster.search("papers", SearchRequest(vector=np.ones(DIM), limit=10))]
        faulty.fail_worker("w1")
        after = [h.id for h in cluster.search("papers", SearchRequest(vector=np.ones(DIM), limit=10))]
        assert after == baseline
        assert cluster.count("papers") == 90

    def test_unreplicated_failure_raises(self):
        inner = LocalTransport()
        faulty = FaultInjectingTransport(inner)
        cluster = Cluster(faulty)
        for i in range(2):
            cluster.add_worker(Worker(f"w{i}"))
        cluster.create_collection(config(replication_factor=1))
        cluster.upsert("papers", points(20))
        faulty.fail_worker("w0")
        with pytest.raises(NoReplicaAvailableError):
            cluster.search("papers", SearchRequest(vector=np.ones(DIM), limit=5))


class TestRebalancing:
    def test_remove_worker_preserves_data(self):
        cluster = Cluster.with_workers(4)
        cluster.create_collection(config())
        cluster.upsert("papers", points(120))
        moves = cluster.remove_worker("worker-2")
        assert moves
        assert cluster.count("papers") == 120
        # all shards now live on surviving workers
        plan = cluster.placement("papers")
        for shard in range(plan.shard_number):
            assert all(w != "worker-2" for w in plan.workers_for(shard))

    def test_search_correct_after_rebalance(self):
        data = points(150, seed=9)
        single = Collection(config("single"))
        single.upsert(data)
        cluster = Cluster.with_workers(4)
        cluster.create_collection(config())
        cluster.upsert("papers", data)
        cluster.remove_worker("worker-1")
        q = np.random.default_rng(11).normal(size=DIM)
        expected = [h.id for h in single.search(SearchRequest(vector=q, limit=10))]
        got = [h.id for h in cluster.search("papers", SearchRequest(vector=q, limit=10))]
        assert got == expected

    def test_add_worker_with_rebalance(self):
        cluster = Cluster.with_workers(2)
        cluster.create_collection(config(shard_number=4, replication_factor=2))
        cluster.upsert("papers", points(80))
        moves = cluster.add_worker(Worker("fresh"), rebalance=True)
        assert cluster.count("papers") == 80
        # data still searchable
        hits = cluster.search("papers", SearchRequest(vector=np.ones(DIM), limit=5))
        assert len(hits) == 5


class TestMaintenance:
    def test_build_index_all_shards(self):
        cluster = Cluster.with_workers(4)
        cluster.create_collection(config())
        cluster.upsert("papers", points(200))
        built = cluster.build_index("papers")
        assert sum(sum(v) for v in built.values()) == 200
        hits = cluster.search("papers", SearchRequest(vector=np.ones(DIM), limit=5))
        assert len(hits) == 5

    def test_create_payload_index(self):
        cluster = Cluster.with_workers(2)
        cluster.create_collection(config())
        cluster.upsert("papers", points(20))
        cluster.create_payload_index("papers", "i", kind="numeric")

    def test_info(self):
        cluster = Cluster.with_workers(2)
        cluster.create_collection(config())
        cluster.upsert("papers", points(20))
        infos = cluster.info("papers")
        assert sum(i.points_count for i in infos) == 20
