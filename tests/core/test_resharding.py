"""Live resharding tests: write gates, planner properties, the three-phase
migration protocol under concurrent writers, coordinator lifecycle, and the
reshard telemetry surface."""

import threading
import time

import numpy as np
import pytest

from repro.core import (
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)
from repro.core.cluster import Cluster
from repro.core.errors import ClusterConfigError
from repro.core.resharding import (
    MoveResult,
    ReshardConfig,
    ReshardCoordinator,
    ShardWriteGate,
)
from repro.core.router import PlacementPlan
from repro.core.transport import FaultInjectingTransport, LocalTransport
from repro.core.worker import Worker

DIM = 8


def config(name="papers", **kwargs):
    defaults = dict(optimizer=OptimizerConfig(indexing_threshold=0))
    defaults.update(kwargs)
    return CollectionConfig(name, VectorParams(size=DIM, distance=Distance.COSINE), **defaults)


def points(n, start=0, seed=0):
    rng = np.random.default_rng(seed)
    return [
        PointStruct(id=start + i, vector=rng.normal(size=DIM), payload={"i": start + i})
        for i in range(n)
    ]


def cluster_with(n_workers, **kwargs):
    cluster = Cluster(**kwargs)
    for i in range(n_workers):
        cluster.add_worker(Worker(f"w{i}"))
    return cluster


class TestShardWriteGate:
    def test_fence_waits_for_inflight_writer(self):
        gate = ShardWriteGate()
        gate.writer_enter()
        fenced = threading.Event()

        def do_fence():
            with gate.fence():
                fenced.set()

        t = threading.Thread(target=do_fence)
        t.start()
        time.sleep(0.02)
        assert not fenced.is_set()  # writer still in flight
        gate.writer_exit()
        t.join(timeout=2)
        assert fenced.is_set()

    def test_writers_blocked_while_fenced(self):
        gate = ShardWriteGate()
        release = threading.Event()
        entered = threading.Event()

        def do_fence():
            with gate.fence():
                entered.set()
                release.wait(timeout=2)

        t = threading.Thread(target=do_fence)
        t.start()
        assert entered.wait(timeout=2)
        admitted = threading.Event()

        def do_write():
            gate.writer_enter()
            admitted.set()
            gate.writer_exit()

        w = threading.Thread(target=do_write)
        w.start()
        time.sleep(0.02)
        assert not admitted.is_set()  # fence keeps writers out
        release.set()
        w.join(timeout=2)
        t.join(timeout=2)
        assert admitted.is_set()


class TestPlannerProperties:
    def test_moves_sorted_and_deterministic(self):
        plan = PlacementPlan(worker_ids=["a", "b", "c"], shard_number=9,
                             replication_factor=2)
        runs = [plan.rebalance(["a", "b", "c", "d"], balance=True)[1] for _ in range(3)]
        assert runs[0] == runs[1] == runs[2]
        keys = [(m.shard_id, m.target) for m in runs[0]]
        assert keys == sorted(keys)

    @pytest.mark.parametrize("seed", range(8))
    def test_minimality_no_move_for_surviving_holders(self, seed):
        """Property: a shard whose holders all survive is never moved."""
        rng = np.random.default_rng(seed)
        n_workers = int(rng.integers(3, 8))
        workers = [f"w{i}" for i in range(n_workers)]
        plan = PlacementPlan(
            worker_ids=workers,
            shard_number=int(rng.integers(4, 16)),
            replication_factor=int(rng.integers(1, 3)),
        )
        departed = {workers[int(rng.integers(0, n_workers))]}
        survivors = [w for w in workers if w not in departed]
        if plan.replication_factor > len(survivors):
            pytest.skip("cannot honour rf after departure")
        _, moves = plan.rebalance(survivors)
        untouched = {
            shard
            for shard, holders in plan.assignments.items()
            if all(h in survivors for h in holders)
        }
        assert all(m.shard_id not in untouched for m in moves)

    def test_balance_mode_levels_spread(self):
        plan = PlacementPlan(worker_ids=["a", "b"], shard_number=8)
        new_plan, moves = plan.rebalance(["a", "b", "c"], balance=True)
        assert moves  # without balance=True scale-out yields no moves
        load = new_plan.load()
        assert max(load.values()) - min(load.values()) <= 1

    def test_apply_move_bumps_epoch(self):
        plan = PlacementPlan(worker_ids=["a", "b"], shard_number=2)
        assert plan.epoch(0) == 0
        assert plan.apply_move(0, ["b"]) == 1
        assert plan.apply_move(0, ["a", "b"]) == 2
        assert plan.epoch(0) == 2
        assert plan.epoch(1) == 0
        with pytest.raises(ClusterConfigError):
            plan.apply_move(1, [])


class TestLiveScaleOut:
    def test_add_worker_migrates_shards_live(self):
        cluster = cluster_with(3)
        cluster.create_collection(config(shard_number=8))
        cluster.upsert("papers", points(120))
        q = np.ones(DIM)
        before = [
            (h.id, round(h.score, 6))
            for h in cluster.search("papers", SearchRequest(vector=q, limit=10))
        ]
        moves = cluster.add_worker(Worker("w3"), rebalance=True)
        assert moves and all(m.target == "w3" for m in moves)
        plan = cluster.placement("papers")
        assert plan.shards_on("w3")  # newcomer received shards
        assert cluster.count("papers") == 120
        after = [
            (h.id, round(h.score, 6))
            for h in cluster.search("papers", SearchRequest(vector=q, limit=10))
        ]
        assert after == before  # migration is invisible to search
        # Moved shards bumped their plan epoch; the source retired its copy.
        for m in moves:
            assert plan.epoch(m.shard_id) >= 1
            holders = plan.workers_for(m.shard_id)
            src = cluster._workers[m.source]
            assert m.source not in holders
            assert not src.has_shard("papers", m.shard_id)

    def test_scale_out_with_concurrent_writers_loses_nothing(self):
        cluster = cluster_with(3)
        cluster.create_collection(config(shard_number=8))
        cluster.upsert("papers", points(90))
        stop = threading.Event()
        written = []
        errors = []

        def writer(worker_idx):
            i = 0
            while not stop.is_set():
                base = 10_000 + worker_idx * 100_000 + i * 10
                try:
                    cluster.upsert("papers", points(10, start=base, seed=worker_idx))
                except Exception as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)
                    return
                written.append(base)
                i += 1

        threads = [threading.Thread(target=writer, args=(k,)) for k in range(2)]
        for t in threads:
            t.start()
        try:
            # Slow the copy enough that writers overlap every phase.
            coordinator = ReshardCoordinator(
                cluster, ReshardConfig(chunk_rows=16, catchup_rounds=4)
            )
            cluster.add_worker(Worker("w3"))
            results = coordinator.reshard_collection("papers", balance=True)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert not errors
        assert results and all(isinstance(r, MoveResult) for r in results)
        expected = 90 + 10 * len(written)
        assert cluster.count("papers") == expected
        # Every concurrently written point is retrievable post-cutover.
        for base in written[:: max(1, len(written) // 20)]:
            rec = cluster.retrieve("papers", base)
            assert rec.payload == {"i": base}

    def test_mutations_during_migration_converge(self):
        """Deletes and payload edits issued mid-move land on the target."""
        cluster = cluster_with(2)
        cluster.create_collection(config(shard_number=4))
        cluster.upsert("papers", points(60))
        coordinator = ReshardCoordinator(
            cluster, ReshardConfig(chunk_rows=8)
        )
        state = cluster._state("papers")
        mutated = threading.Event()

        def mutate():
            cluster.delete("papers", [0, 1, 2])
            cluster.set_payload("papers", 3, {"tag": "migrated"})
            cluster.upsert("papers", points(5, start=500))
            mutated.set()

        t = threading.Thread(target=mutate)
        t.start()
        cluster.add_worker(Worker("w2"))
        coordinator.reshard_collection("papers", balance=True)
        t.join(timeout=10)
        assert mutated.is_set()
        assert cluster.count("papers") == 60 - 3 + 5
        assert cluster.retrieve("papers", 3).payload == {"tag": "migrated"}
        assert state.plan.shards_on("w2")

    def test_throttle_limits_copy_rate(self):
        cluster = cluster_with(1)
        cluster.create_collection(config(shard_number=2))
        cluster.upsert("papers", points(400))
        rate = 64 * 1024.0
        coordinator = ReshardCoordinator(
            cluster,
            ReshardConfig(chunk_rows=32, throttle_bytes_per_s=rate),
        )
        cluster.add_worker(Worker("w1"))
        results = coordinator.reshard_collection("papers", balance=True)
        moved = [r for r in results if not r.fallback]
        assert moved
        stats = coordinator.stats.snapshot()
        assert stats["throttle_sleep_seconds"] > 0
        measured = stats["bytes_copied"] / max(stats["copy_seconds"], 1e-9)
        assert measured <= rate * 1.5  # throttle actually slowed the copy


class TestElasticRemoval:
    def test_remove_worker_graceful_live_migration(self):
        cluster = cluster_with(3)
        cluster.create_collection(config())
        cluster.upsert("papers", points(120))
        moves = cluster.remove_worker("w1")
        assert all(m.target != "w1" for m in moves)
        assert cluster.count("papers") == 120
        assert "w1" not in cluster.placement("papers").worker_ids
        assert cluster.reshard_stats()["lossy_moves"] == 0

    def test_remove_dead_worker_with_replicas_under_writers(self):
        """Satellite stress: rf=2, the departing worker is already dead, and
        writers keep the collection hot — the surviving replica donates every
        shard and no point is lost."""
        faulty = FaultInjectingTransport(LocalTransport(), advertise_failures=True)
        cluster = Cluster(faulty)
        for i in range(3):
            cluster.add_worker(Worker(f"w{i}"))
        cluster.create_collection(config(replication_factor=2))
        cluster.upsert("papers", points(90))
        faulty.fail_worker("w0")
        stop = threading.Event()
        written = []
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                base = 20_000 + i * 10
                try:
                    cluster.upsert("papers", points(10, start=base, seed=7))
                except Exception as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)
                    return
                written.append(base)
                i += 1

        t = threading.Thread(target=writer)
        t.start()
        try:
            moves = cluster.remove_worker("w0")
        finally:
            stop.set()
            t.join(timeout=10)
        assert not errors
        assert moves
        assert cluster.reshard_stats()["lossy_moves"] == 0
        assert cluster.count("papers") == 90 + 10 * len(written)
        # Every shard still has rf live replicas holding identical counts.
        state = cluster._state("papers")
        for shard_id, holders in state.plan.assignments.items():
            assert len(holders) == 2
            counts = {
                cluster._workers[w].count("papers", shard_id) for w in holders
            }
            assert len(counts) == 1

    def test_remove_worker_rf_check_unchanged(self):
        cluster = cluster_with(2)
        cluster.create_collection(config(replication_factor=2))
        with pytest.raises(ClusterConfigError):
            cluster.remove_worker("w0")


class TestCoordinatorLifecycle:
    def test_driver_lifecycle_from_cluster(self):
        cluster = cluster_with(2)
        cluster.create_collection(config(shard_number=4))
        cluster.upsert("papers", points(40))
        cluster.enable_resharding()
        assert cluster.resharder.is_running
        cluster.add_worker(Worker("w2"))
        cluster.resharder.submit("papers")
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if cluster.placement("papers").shards_on("w2"):
                break
            time.sleep(0.01)
        cluster.disable_resharding(drain=True)
        assert not cluster.resharder.is_running
        assert cluster.placement("papers").shards_on("w2")
        assert cluster.count("papers") == 40
        stats = cluster.reshard_stats()
        assert stats["jobs"] >= 1 and stats["moves_completed"] >= 1

    def test_drain_executes_queued_jobs_synchronously(self):
        cluster = cluster_with(2)
        cluster.create_collection(config(shard_number=4))
        cluster.upsert("papers", points(30))
        cluster.add_worker(Worker("w2"))
        cluster.resharder.submit("papers")
        results = cluster.drain_resharding()
        assert results and cluster.placement("papers").shards_on("w2")

    def test_custom_config_via_enable(self):
        cluster = cluster_with(2)
        cfg = ReshardConfig(chunk_rows=4)
        cluster.enable_resharding(config=cfg)
        assert cluster.resharder.config.chunk_rows == 4
        cluster.disable_resharding()

    def test_close_stops_driver(self):
        cluster = cluster_with(2)
        cluster.enable_resharding()
        cluster.close()
        assert not cluster.resharder.is_running


class TestWorkerMigrationRPCs:
    def test_source_side_protocol_direct(self):
        src, dst = Worker("src"), Worker("dst")
        cfg = config()
        src.create_shard("papers", 0, cfg)
        src.upsert("papers", 0, points(20))
        begun = src.begin_shard_migration("papers", 0)
        assert begun["rows"] == 20
        assert src.migration_stats("papers", 0)["active"]
        # Mid-copy mutation lands in the journal, not the pinned snapshot.
        src.upsert("papers", 0, points(3, start=100))
        rows, cursor = 0, 0
        while cursor is not None:
            chunk = src.transfer_shard_out_columnar("papers", 0, cursor, 8)
            dst.transfer_shard_in_chunk(
                "papers", 0, cfg, chunk["ids"], chunk["vectors"], chunk["payloads"]
            )
            rows += len(chunk["ids"])
            cursor = chunk["next_cursor"]
        assert rows == 20
        entries = src.drain_shard_journal("papers", 0)
        assert len(entries) == 3
        assert dst.apply_shard_journal("papers", 0, entries) == 3
        out = src.end_shard_migration("papers", 0)
        assert out["rows_exported"] == 20
        assert not src.migration_stats("papers", 0)["active"]
        assert dst.count("papers", 0) == 23

    def test_chunk_resend_is_idempotent(self):
        src, dst = Worker("src"), Worker("dst")
        cfg = config()
        src.create_shard("papers", 0, cfg)
        src.upsert("papers", 0, points(10))
        src.begin_shard_migration("papers", 0)
        chunk = src.transfer_shard_out_columnar("papers", 0, 0, 10)
        for _ in range(2):  # a transport retry re-sends the same chunk
            dst.transfer_shard_in_chunk(
                "papers", 0, cfg, chunk["ids"], chunk["vectors"], chunk["payloads"]
            )
        src.end_shard_migration("papers", 0)
        assert dst.count("papers", 0) == 10


class TestReshardTelemetry:
    def test_reshard_counters_and_histograms_in_diff(self):
        cluster = cluster_with(2)
        cluster.create_collection(config(shard_number=4))
        cluster.upsert("papers", points(80))
        before = cluster.telemetry()
        cluster.add_worker(Worker("w2"), rebalance=True)
        diff = cluster.telemetry().diff(before)
        assert diff.reshard.moves_completed >= 1
        assert diff.reshard.cutovers >= 1
        assert diff.reshard.rows_copied > 0
        assert diff.reshard.lossy_moves == 0
        hists = cluster.telemetry().histograms
        assert hists["reshard.move_s"].count >= 1
        assert hists["reshard.cutover_s"].count >= 1
        assert hists["reshard.copy_chunk_s"].count >= 1

    def test_reset_telemetry_zeroes_reshard(self):
        cluster = cluster_with(2)
        cluster.create_collection(config(shard_number=4))
        cluster.upsert("papers", points(40))
        cluster.add_worker(Worker("w2"), rebalance=True)
        assert cluster.reshard_stats()["moves_completed"] >= 1
        cluster.reset_telemetry()
        stats = cluster.reshard_stats()
        assert stats["moves_completed"] == 0 and stats["rows_copied"] == 0
        assert cluster.telemetry().histograms.get("reshard.move_s") is None or \
            cluster.telemetry().histograms["reshard.move_s"].count == 0
