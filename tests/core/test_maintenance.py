"""Copy-on-write maintenance: swap protocol, fencing, reconciliation,
optimizer race fixes, and the background driver."""

import threading
import time

import numpy as np
import pytest

from repro.core.collection import Collection
from repro.core.errors import MaintenanceConflictError, PointNotFoundError
from repro.core.filters import FieldMatch, FieldRange
from repro.core.maintenance import MaintenanceDriver
from repro.core.optimizer import SegmentOptimizer
from repro.core.segment import Segment
from repro.core.types import (
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)

DIM = 8


def config(name="maint", **opt_kwargs):
    return CollectionConfig(
        name, VectorParams(size=DIM, distance=Distance.EUCLID),
        optimizer=OptimizerConfig(**opt_kwargs),
    )


def points(n, start=0, seed=None, payload_fn=None):
    rng = np.random.default_rng(start if seed is None else seed)
    return [
        PointStruct(
            id=start + i,
            vector=rng.normal(size=DIM),
            payload=payload_fn(start + i) if payload_fn else None,
        )
        for i in range(n)
    ]


def defer_maintenance(col):
    """Attach a dormant driver so writes only *kick* instead of running the
    inline pass — gives tests deterministic control over when passes run."""
    driver = MaintenanceDriver(col, interval_s=3600.0)
    col.attach_maintenance(driver)
    return driver


def check_invariants(col):
    """No lost/duplicated points; id map consistent with the segment list."""
    segments = col.segments
    seen = {}
    for seg in segments:
        for pid in seg.point_ids():
            assert pid not in seen, f"point {pid} lives in two segments"
            seen[pid] = seg
    id_map = col._id_to_segment
    assert set(id_map) == set(seen), "id map out of sync with segments"
    for pid, seg in id_map.items():
        assert seg.contains(pid), f"id map points {pid} at a segment without it"
        assert any(seg is s for s in segments), f"id map references dropped segment"
    assert len(col) == len(seen)
    return seen


class TestSwapProtocol:
    def test_pass_equivalent_to_synchronous(self):
        """A fenced pass with no concurrent writes == the old inline pass."""
        cfg = config(indexing_threshold=50, vacuum_min_deleted_ratio=0.2)
        col = Collection(cfg)
        defer_maintenance(col)
        col.upsert(points(80))
        for i in range(30):
            col.delete(i)
        report = col.optimize()  # runs the fenced copy-on-write path
        assert report.segments_vacuumed == 1
        assert len(col) == 50
        assert col.segments[0].is_indexed
        check_invariants(col)

    def test_generation_advances_per_pass(self):
        col = Collection(config())
        col.upsert(points(10))
        g0 = col._generation
        col.optimize()
        col.optimize()
        assert col._generation == g0 + 2

    def test_stale_snapshot_commit_fenced(self):
        col = Collection(config())
        col.upsert(points(10))
        with col._write_lock:
            snap = col._begin_maintenance_locked()
        plan = col._optimizer.plan(snap.segments, generation=snap.generation)
        with col._write_lock:
            col._abort_maintenance_locked(snap)
        with pytest.raises(MaintenanceConflictError):
            with col._write_lock:
                col._commit_maintenance_locked(snap, plan)
        check_invariants(col)

    def test_begin_twice_returns_none(self):
        col = Collection(config())
        col.upsert(points(5))
        with col._write_lock:
            snap = col._begin_maintenance_locked()
            assert snap is not None
            assert col._begin_maintenance_locked() is None
            col._abort_maintenance_locked(snap)

    def test_appends_mid_pass_go_to_unpinned_segment(self):
        col = Collection(config())
        col.upsert(points(10))
        pinned = col.segments
        with col._write_lock:
            snap = col._begin_maintenance_locked()
        col.upsert(points(5, start=100))
        target = col._id_to_segment[100]
        assert all(target is not seg for seg in pinned)
        with col._write_lock:
            col._abort_maintenance_locked(snap)
        check_invariants(col)


class TestReconciliation:
    def _run_interleaved(self, cfg, setup, mid_pass):
        """begin → plan → ``mid_pass`` mutations → commit; returns the col."""
        col = Collection(cfg)
        defer_maintenance(col)
        setup(col)
        with col._write_lock:
            snap = col._begin_maintenance_locked()
        assert snap is not None
        plan = col._optimizer.plan(snap.segments, generation=snap.generation)
        mid_pass(col)
        with col._write_lock:
            col._commit_maintenance_locked(snap, plan)
        return col

    def test_mid_pass_delete_replayed_onto_replacement(self):
        cfg = config(indexing_threshold=0, vacuum_min_deleted_ratio=0.2)

        def setup(col):
            col.upsert(points(20))
            col.delete(list(range(10)))  # trigger a vacuum rewrite

        def mid(col):
            col.delete([15])  # lands on the pinned source, journaled

        col = self._run_interleaved(cfg, setup, mid)
        assert col.last_optimizer_report.segments_vacuumed == 1
        assert not col.contains(15)
        assert len(col) == 9
        with pytest.raises(PointNotFoundError):
            col.retrieve(15)
        check_invariants(col)

    def test_mid_pass_payload_replayed_onto_replacement(self):
        cfg = config(indexing_threshold=0, vacuum_min_deleted_ratio=0.2)

        def setup(col):
            col.upsert(points(20, payload_fn=lambda i: {"tag": "old"}))
            col.delete(list(range(10)))

        def mid(col):
            col.set_payload(15, {"tag": "new"})

        col = self._run_interleaved(cfg, setup, mid)
        assert col.retrieve(15).payload == {"tag": "new"}
        check_invariants(col)

    def test_mid_pass_overwrite_moves_point_to_live_segment(self):
        cfg = config(indexing_threshold=0, vacuum_min_deleted_ratio=0.2)
        new_vec = np.full(DIM, 7.0, dtype=np.float32)

        def setup(col):
            col.upsert(points(20))
            col.delete(list(range(10)))

        def mid(col):
            col.upsert([PointStruct(id=15, vector=new_vec)])

        col = self._run_interleaved(cfg, setup, mid)
        got = col.retrieve(15, with_vector=True).vector
        np.testing.assert_array_equal(got, new_vec)
        assert len(col) == 10
        check_invariants(col)

    def test_mid_pass_payload_index_creation_reaches_replacement(self):
        cfg = config(indexing_threshold=0, vacuum_min_deleted_ratio=0.2)

        def setup(col):
            col.upsert(points(20, payload_fn=lambda i: {"bucket": i % 2}))
            col.delete(list(range(10)))

        def mid(col):
            col.create_payload_index("bucket", kind="numeric")

        col = self._run_interleaved(cfg, setup, mid)
        for seg in col.segments:
            assert "bucket" in seg.payload_store.numeric_indexed_keys
        check_invariants(col)

    def test_reconciled_counter(self):
        cfg = config(indexing_threshold=0, vacuum_min_deleted_ratio=0.2)

        def setup(col):
            col.upsert(points(20))
            col.delete(list(range(10)))

        def mid(col):
            col.delete([15, 16])

        col = self._run_interleaved(cfg, setup, mid)
        assert col.maint_stats["passes"] == 1
        assert col.maint_stats["reconciled"] == 2


class TestOptimizeRaceRegression:
    """Satellite: ``optimize()`` used to swap a stale segment snapshot in
    without the write lock — a racing writer's appends were silently lost."""

    def test_writer_racing_optimize_loses_nothing(self):
        cfg = config(
            indexing_threshold=0, max_segments=2, merge_threshold=10_000,
            vacuum_min_deleted_ratio=0.2,
        )
        col = Collection(cfg)
        col.upsert(points(64))
        stop = threading.Event()
        errors = []
        written = []

        def writer():
            try:
                base = 1000
                while not stop.is_set():
                    col.upsert(points(8, start=base))
                    written.append(base)
                    base += 8
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        t = threading.Thread(target=writer)
        t.start()
        try:
            deadline = time.monotonic() + 2.0
            doomed = 0
            while time.monotonic() < deadline:
                col.optimize()
                # keep churn up: deletes make vacuum/merge do real work
                if doomed < 60 and col.contains(doomed):
                    col.delete([doomed])
                    doomed += 1
        finally:
            stop.set()
            t.join()
        assert not errors
        col.optimize()
        seen = check_invariants(col)
        for base in written:
            for pid in range(base, base + 8):
                assert pid in seen, f"upsert of {pid} lost by racing optimize()"


class TestVacuumIndexKinds:
    """Satellite: vacuum recreated every payload index as *keyword*."""

    def test_vacuum_preserves_numeric_index_kind(self):
        cfg = config()
        seg = Segment(cfg)
        rng = np.random.default_rng(0)
        seg.upsert_batch(
            [
                PointStruct(
                    id=i, vector=rng.normal(size=DIM),
                    payload={"score": float(i), "tag": f"t{i % 3}"},
                )
                for i in range(20)
            ]
        )
        seg.payload_store.create_numeric_index("score")
        seg.payload_store.create_keyword_index("tag")
        for i in range(8):
            seg.delete(i)
        fresh = seg.vacuum()
        assert fresh.payload_store.numeric_indexed_keys == {"score"}
        assert fresh.payload_store.keyword_indexed_keys == {"tag"}
        # The numeric index must actually serve range prefilters again.
        cand = fresh.payload_store.prefilter_candidates(FieldRange("score", gte=10))
        assert cand == set(range(10, 20))
        cand = fresh.payload_store.prefilter_candidates(FieldMatch("tag", "t0"))
        assert cand == {i for i in range(8, 20) if i % 3 == 0}

    def test_vacuum_through_collection_keeps_range_filtering(self):
        cfg = config(indexing_threshold=0, vacuum_min_deleted_ratio=0.2)
        col = Collection(cfg)
        defer_maintenance(col)
        col.upsert(points(20, payload_fn=lambda i: {"rank": i}))
        col.create_payload_index("rank", kind="numeric")
        col.delete(list(range(10)))
        col.optimize()
        assert col.last_optimizer_report.segments_vacuumed == 1
        hits = col.search(
            SearchRequest(
                vector=np.zeros(DIM), limit=20,
                filter=FieldRange("rank", gte=15),
            )
        )
        assert sorted(h.id for h in hits) == [15, 16, 17, 18, 19]


class TestMergeFixes:
    """Satellite: merge dropped payload indexes and re-inserted row-wise."""

    def _small_segments(self, cfg, n_segments=4, each=5):
        rng = np.random.default_rng(42)
        segs = []
        for s in range(n_segments):
            seg = Segment(cfg)
            seg.upsert_batch(
                [
                    PointStruct(
                        id=s * 100 + i,
                        vector=rng.normal(size=DIM),
                        payload={"bucket": s, "rank": i},
                    )
                    for i in range(each)
                ]
            )
            segs.append(seg)
        return segs

    def test_merged_segment_keeps_both_index_kinds(self):
        cfg = config(indexing_threshold=0, max_segments=2, merge_threshold=100)
        segs = self._small_segments(cfg)
        segs[0].payload_store.create_keyword_index("bucket")
        segs[1].payload_store.create_numeric_index("rank")
        merged, report = SegmentOptimizer(cfg).run(segs)
        assert report.segments_merged == 4
        assert len(merged) == 1
        store = merged[0].payload_store
        assert "bucket" in store.keyword_indexed_keys
        assert "rank" in store.numeric_indexed_keys
        # Backfilled over every merged point, not just the sources'.
        assert store.prefilter_candidates(FieldMatch("bucket", 2)) == {
            200 + i for i in range(5)
        }

    def test_merge_preserves_points_and_vectors(self):
        cfg = config(indexing_threshold=0, max_segments=2, merge_threshold=100)
        segs = self._small_segments(cfg)
        expected = {}
        for seg in segs:
            for rec in seg.iter_points(with_vector=True):
                expected[rec.id] = (rec.vector.copy(), rec.payload)
        merged, _ = SegmentOptimizer(cfg).run(segs)
        assert len(merged[0]) == len(expected)
        for pid, (vec, payload) in expected.items():
            rec = merged[0].retrieve(pid, with_vector=True)
            np.testing.assert_array_equal(rec.vector, vec)
            assert rec.payload == payload


class TestBitIdentity:
    """Background-maintained state must match the synchronous twin exactly."""

    def test_background_pass_with_concurrent_appends_matches_sync(self):
        cfg = config(indexing_threshold=40, vacuum_min_deleted_ratio=0.2)
        initial = points(60, seed=1)
        extra = points(20, start=500, seed=2)
        queries = np.random.default_rng(3).normal(size=(10, DIM)).astype(np.float32)

        # Twin A: fenced pass over the initial data, fresh appends mid-pass.
        a = Collection(config("a", indexing_threshold=40))
        a.upsert(initial)
        with a._write_lock:
            snap = a._begin_maintenance_locked()
        plan = a._optimizer.plan(snap.segments, generation=snap.generation)
        a.upsert(extra)  # lands in an unpinned appendable segment
        with a._write_lock:
            a._commit_maintenance_locked(snap, plan)

        # Twin B: synchronous optimize, then the same appends.
        b = Collection(config("b", indexing_threshold=40))
        b.upsert(initial)
        b.optimize()
        b.upsert(extra)

        for q in queries:
            hits_a = a.search(SearchRequest(vector=q, limit=10))
            hits_b = b.search(SearchRequest(vector=q, limit=10))
            assert [(h.id, h.score) for h in hits_a] == [
                (h.id, h.score) for h in hits_b
            ]
        check_invariants(a)


class TestMaintenanceDriver:
    def test_driver_runs_passes_on_kick(self):
        cfg = config(indexing_threshold=30)
        col = Collection(cfg)
        driver = MaintenanceDriver(col, interval_s=0.01).start()
        try:
            assert col.maintenance is driver
            col.upsert(points(50))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if col.indexed_vectors_count >= 50:
                    break
                time.sleep(0.005)
            assert col.indexed_vectors_count >= 50, "background index never built"
            assert driver.stats.snapshot()["passes"] >= 1
        finally:
            driver.stop()
        assert col.maintenance is None
        assert not driver.is_running
        check_invariants(col)

    def test_stop_with_drain_runs_final_pass(self):
        cfg = config(indexing_threshold=30)
        col = Collection(cfg)
        driver = MaintenanceDriver(col, interval_s=60.0).start()  # never wakes
        col._apply_upsert(points(50))  # bypass kick: simulate a missed nudge
        driver.stop(drain=True)
        assert col.indexed_vectors_count >= 50
        check_invariants(col)

    def test_inline_optimizer_disabled_while_driver_attached(self):
        cfg = config(indexing_threshold=10)
        col = Collection(cfg)
        driver = MaintenanceDriver(col, interval_s=60.0)
        col.attach_maintenance(driver)  # attached but thread never started
        try:
            col.upsert(points(40))
            # The write path only kicked; nothing ran inline.
            assert col.indexed_vectors_count == 0
            assert driver._wake.is_set()
        finally:
            col.detach_maintenance(driver)

    def test_close_stops_attached_driver(self):
        col = Collection(config())
        driver = MaintenanceDriver(col, interval_s=0.01).start()
        col.upsert(points(5))
        col.close()
        assert not driver.is_running
