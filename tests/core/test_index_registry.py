"""Index factory tests."""

import numpy as np
import pytest

from repro.core.index import INDEX_KINDS, make_index
from repro.core.index.flat import FlatIndex
from repro.core.index.hnsw import HnswIndex
from repro.core.index.ivf import IvfIndex
from repro.core.index.kdtree import KdTreeIndex
from repro.core.storage import VectorArena
from repro.core.types import CollectionConfig, Distance, VectorParams

CONFIG = CollectionConfig("r", VectorParams(size=4, distance=Distance.COSINE))


def test_all_kinds_constructible():
    arena = VectorArena(4)
    expected = {"flat": FlatIndex, "hnsw": HnswIndex, "ivf": IvfIndex, "kdtree": KdTreeIndex}
    assert set(INDEX_KINDS) == set(expected)
    for kind, cls in expected.items():
        index = make_index(kind, arena, CONFIG)
        assert isinstance(index, cls)
        assert index.distance is Distance.COSINE


def test_unknown_kind():
    with pytest.raises(ValueError, match="unknown index kind"):
        make_index("annoy", VectorArena(4), CONFIG)


def test_config_params_propagate():
    arena = VectorArena(4)
    hnsw = make_index("hnsw", arena, CONFIG)
    assert hnsw.config.m == CONFIG.hnsw.m
    ivf = make_index("ivf", arena, CONFIG)
    assert ivf.config.n_lists == CONFIG.ivf.n_lists


def test_collection_build_index_kinds():
    """Every buildable kind works through Collection.build_index."""
    from repro.core import Collection, OptimizerConfig, PointStruct, SearchRequest

    rng = np.random.default_rng(0)
    for kind in ("flat", "hnsw", "ivf", "kdtree"):
        col = Collection(
            CollectionConfig(
                "k", VectorParams(size=8, distance=Distance.COSINE),
                optimizer=OptimizerConfig(indexing_threshold=0),
            )
        )
        col.upsert([PointStruct(id=i, vector=rng.normal(size=8)) for i in range(120)])
        report = col.build_index(kind)
        assert report.vectors_indexed == 120
        hits = col.search(SearchRequest(vector=rng.normal(size=8), limit=5))
        assert len(hits) == 5
