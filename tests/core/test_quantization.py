"""ScalarQuantizer codec tests (direct, plus hypothesis round-trip bounds)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.quantization import ScalarQuantizer


class TestValidation:
    def test_quantile_range(self):
        with pytest.raises(ValueError):
            ScalarQuantizer(quantile=0.4)
        with pytest.raises(ValueError):
            ScalarQuantizer(quantile=1.5)

    def test_untrained_usage(self):
        q = ScalarQuantizer()
        with pytest.raises(RuntimeError):
            q.encode(np.zeros(4, dtype=np.float32))
        with pytest.raises(RuntimeError):
            q.decode(np.zeros(4, dtype=np.uint8))
        with pytest.raises(RuntimeError):
            _ = q.range

    def test_empty_training(self):
        with pytest.raises(ValueError):
            ScalarQuantizer().train(np.empty((0, 4), dtype=np.float32))


class TestCodec:
    def test_roundtrip_error_bounded_by_step(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(500, 16)).astype(np.float32)
        q = ScalarQuantizer(quantile=1.0)  # no clipping
        q.train(data)
        lo, hi = q.range
        step = (hi - lo) / 255.0
        recon = q.decode(q.encode(data))
        assert float(np.max(np.abs(recon - data))) <= step / 2 + 1e-6

    def test_clipping_outliers(self):
        data = np.concatenate([np.zeros(990), np.full(10, 100.0)]).astype(np.float32)
        q = ScalarQuantizer(quantile=0.95)
        q.train(data[None, :])
        lo, hi = q.range
        assert hi < 100.0  # outliers clipped out of the range

    def test_codes_are_uint8(self):
        data = np.random.default_rng(1).normal(size=(50, 8)).astype(np.float32)
        q = ScalarQuantizer()
        q.train(data)
        codes = q.encode(data)
        assert codes.dtype == np.uint8

    def test_constant_data(self):
        data = np.full((10, 4), 3.0, dtype=np.float32)
        q = ScalarQuantizer()
        q.train(data)
        recon = q.decode(q.encode(data))
        assert np.allclose(recon, 3.0, atol=1e-3)

    def test_compression_ratio(self):
        assert ScalarQuantizer().compression_ratio == 4.0

    def test_quantization_error_small_for_smooth_data(self):
        data = np.random.default_rng(2).uniform(-1, 1, size=(200, 32)).astype(np.float32)
        q = ScalarQuantizer()
        q.train(data)
        assert q.quantization_error(data) < 1e-4

    @given(arrays(np.float32, (20, 8),
                  elements=st.floats(-50, 50, allow_nan=False, width=32)))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_preserves_ranking_roughly(self, data):
        """Quantized dot-product ranking correlates with the exact one."""
        q = ScalarQuantizer(quantile=1.0)
        q.train(data)
        recon = q.decode(q.encode(data))
        query = data[0]
        exact = data @ query
        approx = recon @ query
        # Correlation is undefined when either side is (near-)constant —
        # e.g. score differences below one quantization step collapse to a
        # constant approx and corrcoef returns nan.  The spread check runs
        # in float64 (float32 accumulation jitter can report a nonzero std
        # for scores corrcoef sees as exactly constant) and relative to the
        # score magnitude; a non-finite corr means a constant slipped
        # through anyway and there is nothing to assert.
        exact64 = exact.astype(np.float64)
        approx64 = approx.astype(np.float64)
        scale = max(1.0, float(np.abs(exact64).max()))
        if np.std(exact64) > 1e-3 * scale and np.std(approx64) > 1e-6 * scale:
            corr = np.corrcoef(exact64, approx64)[0, 1]
            if np.isfinite(corr):
                assert corr > 0.99


class TestTrainSubsample:
    """Quantile estimation from a seeded subsample above TRAIN_SAMPLE_LIMIT."""

    def test_deterministic_across_runs(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(4000, 16)).astype(np.float32)
        a, b = ScalarQuantizer(), ScalarQuantizer()
        a.train(data, sample_limit=1000)
        b.train(data, sample_limit=1000)
        assert a.range == b.range

    def test_subsample_close_to_full_quantiles(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(20000, 8)).astype(np.float32)
        full, sub = ScalarQuantizer(), ScalarQuantizer()
        full.train(data)  # below the default limit: exact quantiles
        sub.train(data, sample_limit=8192)
        flo, fhi = full.range
        slo, shi = sub.range
        spread = fhi - flo
        assert abs(slo - flo) < 0.1 * spread
        assert abs(shi - fhi) < 0.1 * spread

    def test_limit_respected(self):
        from repro.core.quantization import TRAIN_SAMPLE_LIMIT

        assert TRAIN_SAMPLE_LIMIT > 0
        data = np.linspace(-1, 1, 5000, dtype=np.float32).reshape(-1, 10)
        q = ScalarQuantizer(quantile=1.0)
        q.train(data, sample_limit=500)
        lo, hi = q.range
        # A 500-value subsample cannot see the exact extremes, but must
        # land inside the data range and still cover most of it.
        assert -1.0 <= lo <= -0.5
        assert 0.5 <= hi <= 1.0

    def test_exact_below_limit(self):
        data = np.linspace(-2, 2, 1000, dtype=np.float32).reshape(-1, 10)
        q = ScalarQuantizer(quantile=1.0)
        q.train(data, sample_limit=100000)
        lo, hi = q.range
        assert lo == pytest.approx(-2.0)
        assert hi == pytest.approx(2.0)
