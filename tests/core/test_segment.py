"""Segment tests: write path, lifecycle, search, quantization, vacuum."""

import numpy as np
import pytest

from repro.core.errors import (
    DimensionMismatchError,
    PointNotFoundError,
    SegmentSealedError,
)
from repro.core.filters import FieldMatch, Filter
from repro.core.segment import Segment
from repro.core.types import (
    CollectionConfig,
    Distance,
    PointStruct,
    QuantizationConfig,
    VectorParams,
)

DIM = 12


def config(distance=Distance.COSINE, **kwargs):
    return CollectionConfig("seg", VectorParams(size=DIM, distance=distance), **kwargs)


def filled_segment(n=100, distance=Distance.COSINE, seed=0):
    seg = Segment(config(distance))
    rng = np.random.default_rng(seed)
    points = [
        PointStruct(id=i, vector=rng.normal(size=DIM), payload={"parity": i % 2})
        for i in range(n)
    ]
    seg.upsert_batch(points)
    return seg


class TestWritePath:
    def test_upsert_and_retrieve(self):
        seg = Segment(config())
        seg.upsert(PointStruct(id=5, vector=np.ones(DIM), payload={"k": "v"}))
        rec = seg.retrieve(5, with_vector=True)
        assert rec.id == 5 and rec.payload == {"k": "v"}
        # cosine storage is normalised
        assert np.isclose(np.linalg.norm(rec.vector), 1.0, atol=1e-5)

    def test_euclid_not_normalized(self):
        seg = Segment(config(Distance.EUCLID))
        seg.upsert(PointStruct(id=1, vector=np.full(DIM, 2.0)))
        rec = seg.retrieve(1, with_vector=True)
        assert np.allclose(rec.vector, 2.0)

    def test_upsert_overwrites(self):
        seg = Segment(config(Distance.EUCLID))
        seg.upsert(PointStruct(id=1, vector=np.zeros(DIM)))
        seg.upsert(PointStruct(id=1, vector=np.ones(DIM), payload={"v": 2}))
        assert len(seg) == 1
        rec = seg.retrieve(1, with_vector=True)
        assert np.allclose(rec.vector, 1.0) and rec.payload == {"v": 2}

    def test_batch_mixed_fresh_and_existing(self):
        seg = Segment(config(Distance.EUCLID))
        seg.upsert(PointStruct(id=1, vector=np.zeros(DIM)))
        seg.upsert_batch(
            [PointStruct(id=1, vector=np.ones(DIM)), PointStruct(id=2, vector=np.ones(DIM))]
        )
        assert len(seg) == 2
        assert np.allclose(seg.retrieve(1, with_vector=True).vector, 1.0)

    def test_dimension_mismatch(self):
        seg = Segment(config())
        with pytest.raises(DimensionMismatchError):
            seg.upsert(PointStruct(id=1, vector=np.ones(DIM + 1)))
        with pytest.raises(DimensionMismatchError):
            seg.upsert_batch([PointStruct(id=1, vector=np.ones(DIM - 2))])

    def test_sealed_rejects_writes(self):
        seg = filled_segment(10)
        seg.seal()
        with pytest.raises(SegmentSealedError):
            seg.upsert(PointStruct(id=999, vector=np.ones(DIM)))
        with pytest.raises(SegmentSealedError):
            seg.upsert_batch([PointStruct(id=999, vector=np.ones(DIM))])

    def test_delete(self):
        seg = filled_segment(10)
        seg.delete(3)
        assert not seg.contains(3)
        assert len(seg) == 9
        with pytest.raises(PointNotFoundError):
            seg.retrieve(3)

    def test_delete_missing_raises(self):
        seg = filled_segment(5)
        with pytest.raises(PointNotFoundError):
            seg.delete(999)

    def test_set_payload(self):
        seg = filled_segment(5)
        seg.set_payload(2, {"new": True})
        assert seg.retrieve(2).payload == {"new": True}
        with pytest.raises(PointNotFoundError):
            seg.set_payload(999, {})


class TestSearch:
    def test_search_excludes_deleted(self):
        seg = filled_segment(50, distance=Distance.EUCLID)
        target = seg.retrieve(7, with_vector=True).vector
        hits = seg.search(target, 1)
        assert hits[0].id == 7
        seg.delete(7)
        hits = seg.search(target, 1)
        assert hits[0].id != 7

    def test_search_with_filter(self):
        seg = filled_segment(60)
        q = np.random.default_rng(1).normal(size=DIM).astype(np.float32)
        hits = seg.search(q, 10, flt=Filter(must=[FieldMatch("parity", 0)]),
                          with_payload=True)
        assert hits and all(h.payload["parity"] == 0 for h in hits)

    def test_search_prefilter_index_used(self):
        seg = filled_segment(60)
        seg.payload_store.create_keyword_index("parity")
        q = np.random.default_rng(1).normal(size=DIM).astype(np.float32)
        hits = seg.search(q, 10, flt=FieldMatch("parity", 1), with_payload=True)
        assert hits and all(h.payload["parity"] == 1 for h in hits)

    def test_score_threshold(self):
        seg = filled_segment(50)
        q = seg.retrieve(0, with_vector=True).vector
        hits = seg.search(q, 50, score_threshold=0.99)
        assert all(h.score >= 0.99 for h in hits)

    def test_score_threshold_euclid(self):
        seg = filled_segment(50, distance=Distance.EUCLID)
        q = seg.retrieve(0, with_vector=True).vector
        hits = seg.search(q, 50, score_threshold=1.0)
        assert all(h.score <= 1.0 for h in hits)

    def test_indexed_search_matches_exact(self):
        seg = filled_segment(300)
        q = np.random.default_rng(2).normal(size=DIM).astype(np.float32)
        exact_ids = [h.id for h in seg.search(q, 10)]
        seg.seal()
        seg.build_index("hnsw")
        hnsw_ids = [h.id for h in seg.search(q, 10, ef=128)]
        overlap = len(set(exact_ids) & set(hnsw_ids)) / 10
        assert overlap >= 0.9

    def test_exact_flag_bypasses_index(self):
        seg = filled_segment(300)
        seg.seal()
        seg.build_index("hnsw")
        q = np.random.default_rng(3).normal(size=DIM).astype(np.float32)
        hits = seg.search(q, 10, exact=True)
        assert len(hits) == 10

    def test_search_batch_matches_single(self):
        seg = filled_segment(100)
        queries = np.random.default_rng(4).normal(size=(5, DIM)).astype(np.float32)
        batched = seg.search_batch(queries, 5)
        for q, hits in zip(queries, batched):
            single = seg.search(q, 5)
            assert [h.id for h in hits] == [h.id for h in single]

    def test_dim_mismatch_on_query(self):
        seg = filled_segment(5)
        with pytest.raises(DimensionMismatchError):
            seg.search(np.ones(DIM + 3, dtype=np.float32), 5)


class TestScroll:
    def test_scroll_pagination(self):
        seg = filled_segment(25)
        page1, next_id = seg.scroll(limit=10)
        assert [r.id for r in page1] == list(range(10))
        assert next_id == 10
        page2, next_id2 = seg.scroll(offset_id=next_id, limit=10)
        assert [r.id for r in page2] == list(range(10, 20))
        page3, next_id3 = seg.scroll(offset_id=next_id2, limit=10)
        assert len(page3) == 5 and next_id3 is None

    def test_scroll_with_filter(self):
        seg = filled_segment(20)
        page, _ = seg.scroll(limit=100, flt=FieldMatch("parity", 0))
        assert [r.id for r in page] == [i for i in range(20) if i % 2 == 0]


class TestLifecycle:
    def test_vacuum_reclaims_tombstones(self):
        seg = filled_segment(40)
        for i in range(0, 20):
            seg.delete(i)
        assert seg.deleted_ratio == 0.5
        fresh = seg.vacuum()
        assert len(fresh) == 20
        assert fresh.deleted_ratio == 0.0
        assert sorted(fresh.point_ids()) == list(range(20, 40))
        # payloads survive
        assert fresh.retrieve(25).payload == {"parity": 1}

    def test_quantization_search(self):
        seg = filled_segment(200, seed=5)
        q = seg.retrieve(9, with_vector=True).vector
        exact = [h.id for h in seg.search(q, 5)]
        seg.enable_quantization()
        assert seg.is_quantized
        quant = [h.id for h in seg.search(q, 5)]
        assert quant[0] == exact[0] == 9

    def test_quantize_empty_rejected(self):
        seg = Segment(config(quantization=QuantizationConfig(enabled=True)))
        with pytest.raises(ValueError):
            seg.enable_quantization()

    def test_drop_index(self):
        seg = filled_segment(50)
        seg.seal()
        seg.build_index("hnsw")
        assert seg.is_indexed
        seg.drop_index()
        assert not seg.is_indexed and seg.index_kind is None

    def test_iter_points(self):
        seg = filled_segment(10)
        records = list(seg.iter_points())
        assert len(records) == 10
        assert all(r.vector is not None for r in records)


class TestIndexedDeletes:
    def test_hnsw_search_excludes_tombstones(self):
        """Graph search must honour the deletion bitmap via the predicate."""
        seg = filled_segment(300, seed=11)
        target = seg.retrieve(42, with_vector=True).vector
        seg.seal()
        seg.build_index("hnsw")
        assert seg.search(target, 1)[0].id == 42
        seg.delete(42)
        hits = seg.search(target, 5)
        assert 42 not in [h.id for h in hits]

    def test_many_deletes_still_full_results(self):
        seg = filled_segment(400, seed=12)
        seg.seal()
        seg.build_index("hnsw")
        for pid in range(0, 400, 2):  # kill half the points
            seg.delete(pid)
        q = np.random.default_rng(13).normal(size=DIM).astype(np.float32)
        hits = seg.search(q, 20)
        assert len(hits) == 20
        assert all(h.id % 2 == 1 for h in hits)

    def test_ivf_search_excludes_tombstones(self):
        seg = filled_segment(300, seed=14)
        target = seg.retrieve(10, with_vector=True).vector
        seg.seal()
        seg.build_index("ivf")
        seg.delete(10)
        hits = seg.search(target, 5, nprobe=64)
        assert 10 not in [h.id for h in hits]
