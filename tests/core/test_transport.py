"""Transport layer tests: dispatch, instrumentation, fault injection."""

import numpy as np
import pytest

from repro.core.errors import TransportError, WorkerUnavailableError
from repro.core.transport import (
    FaultInjectingTransport,
    InstrumentedTransport,
    LocalTransport,
    estimate_payload_bytes,
)


class Echo:
    def ping(self):
        return "pong"

    def add(self, a, b):
        return a + b

    not_callable = 42


class TestLocalTransport:
    def test_dispatch(self):
        t = LocalTransport()
        t.register("w0", Echo())
        assert t.call("w0", "ping") == "pong"
        assert t.call("w0", "add", 2, 3) == 5

    def test_unknown_worker(self):
        t = LocalTransport()
        with pytest.raises(WorkerUnavailableError):
            t.call("nope", "ping")

    def test_unknown_method(self):
        t = LocalTransport()
        t.register("w0", Echo())
        with pytest.raises(TransportError):
            t.call("w0", "missing_method")

    def test_non_callable_attribute(self):
        t = LocalTransport()
        t.register("w0", Echo())
        with pytest.raises(TransportError):
            t.call("w0", "not_callable")

    def test_deregister(self):
        t = LocalTransport()
        t.register("w0", Echo())
        t.deregister("w0")
        assert not t.is_reachable("w0")
        assert t.worker_ids() == []


class TestEstimatePayloadBytes:
    def test_numpy(self):
        assert estimate_payload_bytes(np.zeros(10, dtype=np.float32)) == 40

    def test_scalars_and_containers(self):
        assert estimate_payload_bytes(None) == 0
        assert estimate_payload_bytes(True) == 1
        assert estimate_payload_bytes(3) == 8
        assert estimate_payload_bytes("abcd") == 4
        assert estimate_payload_bytes([1, 2]) == 16
        assert estimate_payload_bytes({"a": 1}) == 9

    def test_object_with_dict(self):
        class Obj:
            def __init__(self):
                self.x = np.zeros(4, dtype=np.float32)

        assert estimate_payload_bytes(Obj()) >= 16

    def test_long_homogeneous_list_sampled_exactly(self):
        # The sample-and-extrapolate fast path must be *exact* when every
        # element has the same size (batched points / query vectors — the
        # instrumented hot path whose cost must stay flat in batch width).
        rows = [np.zeros(16, dtype=np.float32) for _ in range(500)]
        assert estimate_payload_bytes(rows) == 500 * 64
        from repro.core.types import PointStruct

        pts = [
            PointStruct(id=i, vector=np.zeros(16, dtype=np.float32))
            for i in range(300)
        ]
        assert estimate_payload_bytes(pts) == sum(
            estimate_payload_bytes(p) for p in pts
        )

    def test_heterogeneous_list_stays_exact(self):
        # Mixed element types must take the exact element-walk path — the
        # head/tail sample would extrapolate the wrong mean.
        mixed = [1] * 100 + ["abcd"] * 100
        assert estimate_payload_bytes(mixed) == 100 * 8 + 100 * 4

    def test_numpy_scalars_use_itemsize(self):
        # Regression: numpy scalars fell through to the 16-byte default.
        assert estimate_payload_bytes(np.float32(1.5)) == 4
        assert estimate_payload_bytes(np.float64(1.5)) == 8
        assert estimate_payload_bytes(np.int64(7)) == 8
        assert estimate_payload_bytes(np.int8(7)) == 1

    def test_slots_object_counts_fields(self):
        # Regression: __slots__ classes have no __dict__ and were charged
        # the opaque 16-byte default regardless of their contents.
        class Slotted:
            __slots__ = ("vec", "tag")

            def __init__(self):
                self.vec = np.zeros(8, dtype=np.float32)  # 32 bytes
                self.tag = "abcd"  # 4 bytes

        assert estimate_payload_bytes(Slotted()) == 36

    def test_slots_inheritance_and_unset_slots(self):
        class Base:
            __slots__ = ("a",)

        class Child(Base):
            __slots__ = ("b",)

            def __init__(self):
                self.a = 1  # 8 bytes
                # b declared but never assigned: skipped, not an error

        assert estimate_payload_bytes(Child()) == 8

    def test_frozenset_counted_as_container(self):
        assert estimate_payload_bytes(frozenset({1, 2})) == 16


class TestInstrumentedTransport:
    def test_records_bytes_and_calls(self):
        inner = LocalTransport()
        inner.register("w0", Echo())
        t = InstrumentedTransport(inner)
        t.call("w0", "add", 1, 2)
        t.call("w0", "ping")
        assert t.stats.calls == 2
        assert t.stats.calls_by_method == {"add": 1, "ping": 1}
        assert t.stats.bytes_sent > 0 and t.stats.bytes_received > 0

    def test_reset(self):
        inner = LocalTransport()
        inner.register("w0", Echo())
        t = InstrumentedTransport(inner)
        t.call("w0", "ping")
        t.stats.reset()
        assert t.stats.calls == 0 and t.stats.bytes_by_method == {}


class TestFaultInjection:
    def test_failed_worker_unreachable(self):
        inner = LocalTransport()
        inner.register("w0", Echo())
        t = FaultInjectingTransport(inner, fail_workers={"w0"})
        assert not t.is_reachable("w0")
        with pytest.raises(WorkerUnavailableError):
            t.call("w0", "ping")

    def test_heal(self):
        inner = LocalTransport()
        inner.register("w0", Echo())
        t = FaultInjectingTransport(inner)
        t.fail_worker("w0")
        t.heal_worker("w0")
        assert t.call("w0", "ping") == "pong"

    def test_fail_every_nth(self):
        inner = LocalTransport()
        inner.register("w0", Echo())
        t = FaultInjectingTransport(inner, fail_every=3)
        results = []
        for i in range(6):
            try:
                results.append(t.call("w0", "ping"))
            except TransportError:
                results.append("FAIL")
        assert results == ["pong", "pong", "FAIL", "pong", "pong", "FAIL"]

    def test_fail_every_must_be_ge_2(self):
        with pytest.raises(ValueError):
            FaultInjectingTransport(LocalTransport(), fail_every=1)
