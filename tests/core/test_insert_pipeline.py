"""Write-path tests: parallel shard fan-out, aggregated UpdateResults,
columnar == row-wise equivalence, ingest telemetry, pipelined clients.

These cover the insertion pipeline the paper's Figure 2 measures: the
coordinator fans a batch out to every touched shard in parallel (replica
chains stay serial per shard), the result is a deterministic aggregate
rather than "last shard wins", and the columnar path must be
indistinguishable from the row-wise path in every observable way.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)
from repro.core.batch import Batch
from repro.core.client import SyncClient
from repro.core.cluster import Cluster
from repro.core.mpclient import ParallelClientPool
from repro.core.types import UpdateResult, UpdateStatus, WalConfig

DIM = 8


def config(name="papers", **kwargs):
    defaults = dict(optimizer=OptimizerConfig(indexing_threshold=0))
    defaults.update(kwargs)
    return CollectionConfig(name, VectorParams(size=DIM, distance=Distance.COSINE), **defaults)


def points(n, start=0, seed=0):
    rng = np.random.default_rng(seed)
    return [
        PointStruct(id=start + i, vector=rng.normal(size=DIM), payload={"i": start + i})
        for i in range(n)
    ]


def shard_collections(cluster, name="papers"):
    for worker in cluster.workers():
        for (coll, _), shard in worker._shards.items():  # noqa: SLF001
            if coll == name:
                yield shard


def hit_ids(cluster, name="papers", seed=42, n_queries=8, limit=10):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n_queries):
        hits = cluster.search(name, SearchRequest(vector=rng.normal(size=DIM), limit=limit))
        out.append([(h.id, round(h.score, 6)) for h in hits])
    return out


class TestAggregatedUpdateResult:
    def test_upsert_reports_max_operation_id(self):
        """Regression: the aggregate must not be whichever shard happened to
        be gathered last — it is the max operation id across all shards."""
        cluster = Cluster.with_workers(2)
        cluster.create_collection(config(shard_number=4))
        # Skew per-shard operation counters before the measured write.
        for _ in range(3):
            cluster.upsert("papers", points(2, start=0, seed=1))
        result = cluster.upsert("papers", points(64, start=100, seed=2))
        assert isinstance(result, UpdateResult)
        assert result.status is UpdateStatus.COMPLETED
        max_counter = max(
            shard._operation_counter for shard in shard_collections(cluster)  # noqa: SLF001
        )
        assert result.operation_id == max_counter

    def test_columnar_upsert_aggregates_too(self):
        cluster = Cluster.with_workers(2)
        cluster.create_collection(config(shard_number=4))
        batch = Batch.from_points(points(64, seed=3))
        result = cluster.upsert_columnar("papers", batch)
        max_counter = max(
            shard._operation_counter for shard in shard_collections(cluster)  # noqa: SLF001
        )
        assert result.operation_id == max_counter

    def test_delete_and_set_payload_return_results(self):
        cluster = Cluster.with_workers(2)
        cluster.create_collection(config(shard_number=4))
        cluster.upsert("papers", points(32, seed=4))
        deleted = cluster.delete("papers", list(range(16)))
        assert isinstance(deleted, UpdateResult)
        assert deleted.status is UpdateStatus.COMPLETED
        updated = cluster.set_payload("papers", 20, {"tag": "x"})
        assert isinstance(updated, UpdateResult)
        assert cluster.count("papers") == 16


class TestParallelFanoutEquivalence:
    def test_parallel_matches_serial_writes(self):
        """Same data through the parallel fan-out and a forced-serial
        cluster must give identical counts and search results."""
        data = points(200, seed=7)
        clusters = {
            "parallel": Cluster.with_workers(4),
            "serial": Cluster.with_workers(4, max_fanout_threads=1),
        }
        results = {}
        for label, cluster in clusters.items():
            cluster.create_collection(config(shard_number=8))
            for start in range(0, len(data), 32):
                cluster.upsert("papers", data[start : start + 32])
            results[label] = (cluster.count("papers"), hit_ids(cluster))
            cluster.close()
        assert results["parallel"] == results["serial"]

    def test_replicated_write_reaches_all_replicas(self):
        cluster = Cluster.with_workers(3)
        cluster.create_collection(config(shard_number=3, replication_factor=2))
        result = cluster.upsert("papers", points(60, seed=8))
        assert result.status is UpdateStatus.COMPLETED
        state = cluster._state("papers")  # noqa: SLF001
        for shard_id in range(3):
            workers = state.plan.workers_for(shard_id)
            assert len(workers) == 2
            counts = {
                w: cluster.transport.call(w, "count", "papers", shard_id)
                for w in workers
            }
            assert len(set(counts.values())) == 1  # replicas agree


class TestColumnarEqualsRowWise:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 60), st.integers(0, 2**31), st.integers(1, 6))
    def test_property_columnar_matches_rowwise(self, n, seed, shards):
        rng = np.random.default_rng(seed)
        ids = rng.choice(10**6, size=n, replace=False)
        vectors = rng.normal(size=(n, DIM)).astype(np.float32)
        data = [
            PointStruct(id=int(pid), vector=vectors[i], payload={"i": int(pid)})
            for i, pid in enumerate(ids)
        ]
        row_cluster = Cluster.with_workers(2)
        row_cluster.create_collection(config(shard_number=shards))
        row_cluster.upsert("papers", data)
        col_cluster = Cluster.with_workers(2)
        col_cluster.create_collection(config(shard_number=shards))
        col_cluster.upsert_columnar("papers", Batch.from_points(data))
        try:
            assert row_cluster.count("papers") == col_cluster.count("papers") == n
            assert hit_ids(row_cluster, seed=seed) == hit_ids(col_cluster, seed=seed)
            probe = int(ids[0])
            row_rec = row_cluster.retrieve("papers", probe, with_vector=True)
            col_rec = col_cluster.retrieve("papers", probe, with_vector=True)
            np.testing.assert_array_equal(row_rec.vector, col_rec.vector)
            assert row_rec.payload == col_rec.payload
        finally:
            row_cluster.close()
            col_cluster.close()

    def test_columnar_overwrite_semantics_match(self):
        """Re-upserting existing ids columnar-style must replace vectors the
        same way the row-wise path does."""
        base = points(40, seed=9)
        replacement = points(40, seed=10)  # same ids, new vectors
        row_cluster = Cluster.with_workers(2)
        row_cluster.create_collection(config(shard_number=4))
        row_cluster.upsert("papers", base)
        row_cluster.upsert("papers", replacement)
        col_cluster = Cluster.with_workers(2)
        col_cluster.create_collection(config(shard_number=4))
        col_cluster.upsert_columnar("papers", Batch.from_points(base))
        col_cluster.upsert_columnar("papers", Batch.from_points(replacement))
        assert row_cluster.count("papers") == col_cluster.count("papers") == 40
        assert hit_ids(row_cluster) == hit_ids(col_cluster)


class TestIngestTelemetry:
    def test_ingest_counters_accumulate(self):
        cluster = Cluster.with_workers(2)
        cluster.create_collection(config(shard_number=4))
        data = points(100, seed=11)
        cluster.upsert("papers", data[:50])
        cluster.upsert_columnar("papers", Batch.from_points(data[50:]))
        cluster.delete("papers", [data[0].id])
        stats = cluster.ingest_stats
        assert stats.upserts == 2
        assert stats.deletes == 1
        assert stats.points == 101  # 50 + 50 upserted + 1 delete target
        assert stats.bytes == 100 * DIM * 4 + 50 * 8  # vectors + columnar ids
        assert stats.max_width <= 4
        assert stats.points_per_second > 0
        assert sum(stats.shard_seconds.values()) > 0

    def test_telemetry_snapshot_surfaces_ingest(self):
        cluster = Cluster.with_workers(2)
        cluster.create_collection(config(shard_number=4))
        snap_before = cluster.telemetry()
        cluster.upsert("papers", points(64, seed=12))
        snap_after = cluster.telemetry()
        delta = snap_after.diff(snap_before)
        assert delta.ingest.points == 64
        assert delta.ingest.upserts == 1
        assert delta.total_bytes_ingested == 64 * DIM * 4
        assert delta.total_write_seconds > 0

    def test_wal_group_commit_surfaced_and_flushable(self, tmp_path):
        wal = WalConfig(enabled=True, path=str(tmp_path), flush_every_n=64)
        cluster = Cluster.with_workers(2)
        cluster.create_collection(config(shard_number=2, wal=wal))
        cluster.upsert("papers", points(10, seed=13))
        snap = cluster.telemetry()
        assert snap.total_wal_appends >= 2  # at least one per touched shard
        # Group of 64 not full yet: some appends may still be buffered.
        pending = [
            s._wal.pending_records  # noqa: SLF001
            for s in shard_collections(cluster)
            if s._wal is not None  # noqa: SLF001
        ]
        assert pending and any(p > 0 for p in pending)
        cluster.flush_wals("papers")
        for shard in shard_collections(cluster):
            assert shard._wal.pending_records == 0  # noqa: SLF001
        assert cluster.telemetry().total_wal_flushes >= 2


class TestPipelinedClients:
    def test_sync_pipelined_matches_serial(self):
        data = points(120, seed=14)
        serial = Cluster.with_workers(2)
        serial.create_collection(config(shard_number=4))
        SyncClient(serial, "papers").upload(data, batch_size=16)
        piped = Cluster.with_workers(2)
        piped.create_collection(config(shard_number=4))
        client = SyncClient(piped, "papers")
        uploaded = client.upload_pipelined(data, batch_size=16)
        assert uploaded == 120
        assert hit_ids(serial) == hit_ids(piped)
        t = client.upload_timings
        assert len(t.convert) == len(t.request) == 8
        assert t.wall > 0
        assert 0.0 <= t.overlap_fraction <= 1.0
        assert t.observed_speedup() >= 1.0 or t.wall >= t.total

    def test_sync_pipelined_columnar(self):
        data = points(50, seed=15)
        cluster = Cluster.with_workers(2)
        cluster.create_collection(config(shard_number=4))
        client = SyncClient(cluster, "papers")
        assert client.upload_pipelined(data, batch_size=13, columnar=True) == 50
        assert cluster.count("papers") == 50

    def test_mp_pool_columnar_matches_rowwise(self):
        data = points(90, seed=16)
        row = Cluster.with_workers(3)
        row.create_collection(config(shard_number=3))
        ParallelClientPool(row, "papers").upload(data, batch_size=16)
        col = Cluster.with_workers(3)
        col.create_collection(config(shard_number=3))
        report = ParallelClientPool(col, "papers").upload(
            data, batch_size=16, columnar=True
        )
        assert report.points == 90
        assert report.clients == 3
        assert col.count("papers") == 90
        assert hit_ids(row) == hit_ids(col)
