"""Distance-kernel tests, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import distances
from repro.core.types import Distance

DIM = 8

finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, width=32)
vec_strategy = arrays(np.float32, DIM, elements=finite_floats)
mat_strategy = arrays(
    np.float32, st.tuples(st.integers(1, 20), st.just(DIM)), elements=finite_floats
)


class TestNormalize:
    def test_unit_norm(self):
        v = distances.normalize(np.array([3.0, 4.0], dtype=np.float32))
        assert np.isclose(np.linalg.norm(v), 1.0)

    def test_zero_vector_untouched(self):
        z = distances.normalize(np.zeros(4, dtype=np.float32))
        assert np.all(z == 0)

    @given(vec_strategy)
    def test_idempotent(self, v):
        once = distances.normalize(v)
        twice = distances.normalize(once)
        assert np.allclose(once, twice, atol=1e-5)

    @given(mat_strategy)
    def test_batch_rows_unit_or_zero(self, mat):
        out = distances.normalize_batch(mat)
        norms = np.linalg.norm(out, axis=1)
        for orig, n in zip(np.linalg.norm(mat, axis=1), norms):
            if orig > 1e-6:
                assert np.isclose(n, 1.0, atol=1e-4)

    def test_batch_in_place(self):
        mat = np.random.default_rng(0).normal(size=(5, DIM)).astype(np.float32)
        out = distances.normalize_batch(mat, out=mat)
        assert out is mat
        assert np.allclose(np.linalg.norm(mat, axis=1), 1.0, atol=1e-5)

    def test_batch_rejects_1d(self):
        with pytest.raises(ValueError):
            distances.normalize_batch(np.zeros(4, dtype=np.float32))


class TestScoreBatch:
    @given(mat_strategy, vec_strategy)
    @settings(max_examples=50)
    def test_euclid_matches_reference(self, mat, q):
        scores = distances.euclidean_sq(mat, q)
        reference = np.sum((mat - q) ** 2, axis=1)
        assert np.allclose(scores, reference, atol=1e-2)

    @given(mat_strategy, vec_strategy)
    @settings(max_examples=50)
    def test_cosine_on_normalized_equals_dot(self, mat, q):
        mat_n = distances.normalize_batch(mat)
        cos = distances.score_batch(mat_n, q, Distance.COSINE, normalized_storage=True)
        dot = distances.score_batch(mat_n, distances.normalize(q), Distance.DOT)
        assert np.allclose(cos, dot, atol=1e-4)

    def test_cosine_unnormalized_storage(self):
        rng = np.random.default_rng(1)
        mat = rng.normal(size=(10, DIM)).astype(np.float32) * 5
        q = rng.normal(size=DIM).astype(np.float32)
        cos = distances.score_batch(mat, q, Distance.COSINE, normalized_storage=False)
        assert np.all(cos <= 1.0 + 1e-5) and np.all(cos >= -1.0 - 1e-5)

    def test_cosine_zero_query(self):
        mat = np.ones((3, DIM), dtype=np.float32)
        out = distances.cosine_similarity(mat, np.zeros(DIM, dtype=np.float32))
        assert np.all(out == 0)

    def test_unknown_distance_raises(self):
        with pytest.raises(ValueError):
            distances.score_batch(np.ones((1, DIM), dtype=np.float32),
                                  np.ones(DIM, dtype=np.float32), "bogus")


class TestPairwise:
    @given(mat_strategy)
    @settings(max_examples=30)
    def test_pairwise_matches_single(self, mat):
        queries = mat[: min(3, len(mat))]
        for dist in (Distance.DOT, Distance.EUCLID):
            pair = distances.score_pairwise(mat, queries, dist)
            for i, q in enumerate(queries):
                single = distances.score_batch(mat, q, dist)
                assert np.allclose(pair[i], single, atol=1e-2)

    def test_pairwise_rejects_1d(self):
        with pytest.raises(ValueError):
            distances.score_pairwise(
                np.ones((2, DIM), dtype=np.float32),
                np.ones(DIM, dtype=np.float32),
                Distance.DOT,
            )


class TestTopK:
    @given(
        arrays(np.float32, st.integers(1, 50), elements=finite_floats),
        st.integers(1, 60),
    )
    def test_matches_full_sort(self, scores, k):
        for dist in (Distance.COSINE, Distance.EUCLID):
            idx, top = distances.top_k(scores, k, dist)
            order = np.argsort(scores)
            expected = order[::-1][:k] if dist.higher_is_better else order[:k]
            # scores (not indices) must match — ties may permute indices
            assert np.allclose(np.sort(top), np.sort(scores[expected]), atol=0)
            # returned scores ordered best-first
            if dist.higher_is_better:
                assert np.all(np.diff(top) <= 0)
            else:
                assert np.all(np.diff(top) >= 0)

    def test_k_zero(self):
        idx, top = distances.top_k(np.ones(5, dtype=np.float32), 0, Distance.DOT)
        assert len(idx) == 0 and len(top) == 0

    def test_empty_scores(self):
        idx, top = distances.top_k(np.empty(0, dtype=np.float32), 3, Distance.DOT)
        assert len(idx) == 0


class TestMergeTopK:
    def test_merges_across_shards(self):
        a = (np.array([1, 2]), np.array([0.9, 0.5], dtype=np.float32))
        b = (np.array([3, 4]), np.array([0.8, 0.7], dtype=np.float32))
        ids, scores = distances.merge_top_k([a, b], 3, Distance.COSINE)
        assert ids.tolist() == [1, 3, 4]
        assert np.allclose(scores, [0.9, 0.8, 0.7])

    def test_empty_partials(self):
        ids, scores = distances.merge_top_k([], 5, Distance.COSINE)
        assert len(ids) == 0

    def test_euclid_order(self):
        a = (np.array([1]), np.array([2.0], dtype=np.float32))
        b = (np.array([2]), np.array([1.0], dtype=np.float32))
        ids, _ = distances.merge_top_k([a, b], 2, Distance.EUCLID)
        assert ids.tolist() == [2, 1]

    @given(st.lists(st.tuples(st.integers(0, 1000), finite_floats), min_size=0, max_size=40),
           st.integers(1, 10))
    def test_merge_equals_global_topk(self, pairs, k):
        # split pairs arbitrarily into two shards
        half = len(pairs) // 2
        def to_arrays(chunk):
            ids = np.array([p[0] for p in chunk], dtype=np.int64)
            sc = np.array([p[1] for p in chunk], dtype=np.float32)
            return ids, sc
        merged_ids, merged_scores = distances.merge_top_k(
            [to_arrays(pairs[:half]), to_arrays(pairs[half:])], k, Distance.COSINE
        )
        all_scores = np.array([p[1] for p in pairs], dtype=np.float32)
        expected = np.sort(all_scores)[::-1][: min(k, len(pairs))]
        assert np.allclose(np.asarray(merged_scores), expected)


class TestDeterministicTies:
    """Regression: duplicate scores must break ties deterministically.

    ``top_k`` prefers the lowest row index among equal scores, and
    ``merge_top_k`` therefore keeps hits from earlier partials — the
    property the distributed reduce relies on for run-to-run stability.
    """

    def test_topk_duplicate_scores_prefer_low_index(self):
        scores = np.array([0.5, 0.9, 0.5, 0.9, 0.5, 0.1], dtype=np.float32)
        idx, top = distances.top_k(scores, 3, Distance.COSINE)
        assert idx.tolist() == [1, 3, 0]
        assert top.tolist() == [np.float32(0.9), np.float32(0.9), np.float32(0.5)]

    def test_topk_duplicate_scores_euclid(self):
        scores = np.array([2.0, 1.0, 2.0, 1.0, 3.0], dtype=np.float32)
        idx, _ = distances.top_k(scores, 3, Distance.EUCLID)
        assert idx.tolist() == [1, 3, 0]

    def test_topk_all_equal(self):
        scores = np.full(8, 0.25, dtype=np.float32)
        idx, _ = distances.top_k(scores, 4, Distance.COSINE)
        assert idx.tolist() == [0, 1, 2, 3]

    def test_topk_boundary_tie_cut(self):
        # three hits tie at the k-th score; only the lowest indices survive
        scores = np.array([0.9, 0.5, 0.5, 0.5, 0.1], dtype=np.float32)
        idx, _ = distances.top_k(scores, 2, Distance.COSINE)
        assert idx.tolist() == [0, 1]

    def test_topk_k_ge_n_sorted_with_stable_ties(self):
        scores = np.array([0.5, 0.9, 0.5], dtype=np.float32)
        idx, _ = distances.top_k(scores, 10, Distance.COSINE)
        assert idx.tolist() == [1, 0, 2]

    def test_merge_ties_keep_earlier_partial(self):
        a = (np.array([10]), np.array([0.7], dtype=np.float32))
        b = (np.array([20]), np.array([0.7], dtype=np.float32))
        ids, _ = distances.merge_top_k([a, b], 1, Distance.COSINE)
        assert ids.tolist() == [10]
        # and flipping partial order flips the winner
        ids, _ = distances.merge_top_k([b, a], 1, Distance.COSINE)
        assert ids.tolist() == [20]

    @given(
        st.lists(st.sampled_from([0.1, 0.5, 0.9]), min_size=1, max_size=30),
        st.integers(1, 8),
    )
    @settings(max_examples=60)
    def test_topk_deterministic_under_duplicates(self, values, k):
        scores = np.array(values, dtype=np.float32)
        idx1, top1 = distances.top_k(scores, k, Distance.COSINE)
        idx2, top2 = distances.top_k(scores.copy(), k, Distance.COSINE)
        assert idx1.tolist() == idx2.tolist()
        assert top1.tolist() == top2.tolist()
        # scores sorted best-first, indices minimal among equal scores
        order = np.argsort(-scores, kind="stable")[: len(idx1)]
        assert idx1.tolist() == order.tolist()
