"""Result-cache tests: policy validation, both LRU tiers, generation and
epoch fencing, canonical query fingerprints (the coalescer/cache key),
exact ``ScoredPoint`` byte accounting, and the cluster-level integration
(hits bit-identical, writes invalidate, shard tier skips untouched shards,
degraded results never cached, telemetry/metrics surfaces)."""

import numpy as np
import pytest

from repro.core import (
    CachePolicy,
    CollectionConfig,
    Distance,
    FieldIn,
    Filter,
    HasId,
    OptimizerConfig,
    PointStruct,
    ResultCache,
    ScoredPoint,
    SearchParams,
    SearchRequest,
    SearchResult,
    ShardResultCache,
    VectorParams,
)
from repro.core.cluster import Cluster
from repro.core.scheduler import CoalescePolicy, QueryCoalescer
from repro.core.transport import (
    FaultInjectingTransport,
    LocalTransport,
    estimate_payload_bytes,
)
from repro.core.types import canonical_filter_key
from repro.core.worker import Worker

DIM = 8
N_POINTS = 120


def config(name="papers", **kwargs):
    defaults = dict(optimizer=OptimizerConfig(indexing_threshold=0), shard_number=4)
    defaults.update(kwargs)
    return CollectionConfig(
        name, VectorParams(size=DIM, distance=Distance.COSINE), **defaults
    )


def points(n, start=0, seed=0):
    rng = np.random.default_rng(seed)
    return [
        PointStruct(id=start + i, vector=rng.normal(size=DIM), payload={"i": start + i})
        for i in range(n)
    ]


def queries(n, seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=DIM) for _ in range(n)]


def make_cluster(n_workers=4, cache=True, **kwargs):
    cluster = Cluster.with_workers(n_workers)
    cluster.create_collection(config(**kwargs))
    cluster.upsert("papers", points(N_POINTS))
    if cache:
        cluster.enable_cache()
    return cluster


def hit_keys(result):
    return [(h.id, h.score) for h in result]


class TestCachePolicy:
    def test_defaults_valid(self):
        p = CachePolicy()
        assert p.max_bytes > 0 and p.shard_tier

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_bytes=0),
            dict(max_entries=0),
            dict(shard_max_bytes=0),
            dict(shard_max_entries=0),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            CachePolicy(**kwargs)


class TestFingerprint:
    """Satellite: the canonical fingerprint must be order-insensitive over
    filter clauses and membership lists, but sensitive to every
    result-changing knob."""

    def q(self):
        return np.arange(DIM, dtype=np.float32)

    def test_filter_clause_order_invariant(self):
        a = Filter(must=[FieldIn("a", [3, 1, 2]), HasId([9, 7])])
        b = Filter(must=[HasId([7, 9]), FieldIn("a", [2, 3, 1])])
        fa = SearchRequest(vector=self.q(), filter=a).fingerprint("papers")
        fb = SearchRequest(vector=self.q(), filter=b).fingerprint("papers")
        assert fa == fb
        assert canonical_filter_key(a) == canonical_filter_key(b)

    def test_no_filter_is_distinct(self):
        assert canonical_filter_key(None) is None
        with_f = SearchRequest(
            vector=self.q(), filter=HasId([1])
        ).fingerprint("papers")
        without = SearchRequest(vector=self.q()).fingerprint("papers")
        assert with_f != without

    def test_every_knob_changes_fingerprint(self):
        base = SearchRequest(vector=self.q())
        variants = [
            SearchRequest(vector=self.q() + 1e-6),  # float-exact vector bytes
            SearchRequest(vector=self.q(), limit=11),
            SearchRequest(vector=self.q(), params=SearchParams(hnsw_ef=99)),
            SearchRequest(vector=self.q(), params=SearchParams(exact=True)),
            SearchRequest(vector=self.q(), with_payload=True),
            SearchRequest(vector=self.q(), with_vector=True),
            SearchRequest(vector=self.q(), score_threshold=0.5),
            SearchRequest(vector=self.q(), allow_partial=True),
        ]
        prints = {base.fingerprint("papers")}
        for v in variants:
            prints.add(v.fingerprint("papers"))
        assert len(prints) == len(variants) + 1

    def test_collection_scopes_fingerprint(self):
        r = SearchRequest(vector=self.q())
        assert r.fingerprint("a") != r.fingerprint("b")
        assert r.fingerprint("a") == r.fingerprint("a")


def _mk_result(ids, shards_total=2, shards_answered=2):
    hits = [ScoredPoint(id=i, score=1.0 / (i + 1), shard_id=i % 2) for i in ids]
    return SearchResult(hits, shards_total=shards_total, shards_answered=shards_answered)


class TestResultCacheUnit:
    def fill(self, cache, fp, ids, *, collection="c", shards=frozenset({0, 1}),
             gens=None):
        return cache.fill(
            fp,
            _mk_result(ids),
            collection=collection,
            shard_set=shards,
            epoch=cache.epoch(collection),
            gen_vector=gens or {0: 0, 1: 0},
        )

    def test_roundtrip_returns_fresh_equal_result(self):
        cache = ResultCache()
        assert self.fill(cache, "fp", [1, 2, 3])
        r1 = cache.lookup("fp", collection="c", shard_set=frozenset({0, 1}))
        r2 = cache.lookup("fp", collection="c", shard_set=frozenset({0, 1}))
        assert hit_keys(r1) == hit_keys(r2) == hit_keys(_mk_result([1, 2, 3]))
        assert (r1.shards_total, r1.shards_answered) == (2, 2)
        assert r1 is not r2  # fresh wrapper each hit: callers may mutate
        r1.append("junk")
        assert len(cache.lookup("fp", collection="c", shard_set=frozenset({0, 1}))) == 3
        snap = cache.stats.snapshot()
        assert snap["fills"] == 1 and snap["hits"] == 3 and snap["misses"] == 0

    def test_epoch_bump_invalidates(self):
        cache = ResultCache()
        self.fill(cache, "fp", [1])
        cache.bump_epoch("c")
        assert cache.lookup("fp", collection="c", shard_set=frozenset({0, 1})) is None
        assert cache.stats.snapshot()["invalidations"] == 1
        assert cache.entry_count == 0

    def test_shard_set_change_invalidates(self):
        cache = ResultCache()
        self.fill(cache, "fp", [1])
        assert cache.lookup("fp", collection="c", shard_set=frozenset({0, 1, 2})) is None
        assert cache.stats.snapshot()["invalidations"] == 1

    def test_newer_observed_generation_invalidates(self):
        cache = ResultCache()
        self.fill(cache, "fp", [1], gens={0: 3, 1: 5})
        cache.observe_generations("c", {0: 3, 1: 5})  # same gens: still valid
        assert cache.lookup("fp", collection="c", shard_set=frozenset({0, 1})) is not None
        cache.observe_generations("c", {1: 6})
        assert cache.lookup("fp", collection="c", shard_set=frozenset({0, 1})) is None
        assert cache.stats.snapshot()["invalidations"] == 1

    def test_fill_refused_when_epoch_moved(self):
        cache = ResultCache()
        epoch = cache.epoch("c")
        cache.bump_epoch("c")  # a write lands while the fan-out is in flight
        ok = cache.fill(
            "fp", _mk_result([1]), collection="c",
            shard_set=frozenset({0, 1}), epoch=epoch, gen_vector={0: 0, 1: 0},
        )
        assert not ok
        assert cache.entry_count == 0
        assert cache.stats.snapshot()["rejected"] == 1

    def test_oversized_result_rejected(self):
        cache = ResultCache(CachePolicy(max_bytes=1))
        assert not self.fill(cache, "fp", list(range(50)))
        assert cache.stats.snapshot()["rejected"] == 1

    def test_lru_eviction_respects_recency(self):
        cache = ResultCache(CachePolicy(max_entries=2))
        self.fill(cache, "a", [1])
        self.fill(cache, "b", [2])
        # Touch "a" so "b" is the LRU victim when "c" arrives.
        assert cache.lookup("a", collection="c", shard_set=frozenset({0, 1}))
        self.fill(cache, "c", [3])
        assert cache.entry_count == 2
        assert cache.lookup("b", collection="c", shard_set=frozenset({0, 1})) is None
        assert cache.lookup("a", collection="c", shard_set=frozenset({0, 1}))
        assert cache.stats.snapshot()["evictions"] == 1

    def test_byte_budget_evicts(self):
        fat = _mk_result(list(range(40)))
        budget = estimate_payload_bytes(list(fat)) + 256
        cache = ResultCache(CachePolicy(max_bytes=budget))
        self.fill(cache, "a", list(range(40)))
        self.fill(cache, "b", list(range(40)))
        assert cache.entry_count == 1
        assert cache.bytes_used <= budget
        assert cache.stats.snapshot()["evictions"] == 1

    def test_clear_keeps_fence_state(self):
        cache = ResultCache()
        cache.bump_epoch("c")
        self.fill(cache, "fp", [1])
        cache.clear()
        assert cache.entry_count == 0 and cache.bytes_used == 0
        assert cache.epoch("c") == 1


class TestShardResultCacheUnit:
    def test_hit_requires_exact_generation(self):
        cache = ShardResultCache()
        hits = [ScoredPoint(id=1, score=0.5, shard_id=0)]
        assert cache.fill("c", 0, "fp", hits, generation=7)
        assert hit_keys(cache.lookup("c", 0, "fp", 7)) == hit_keys(hits)
        assert cache.lookup("c", 0, "fp", 8) is None  # stale: invalidated
        assert cache.lookup("c", 0, "fp", 7) is None  # gone for good
        snap = cache.stats.snapshot()
        assert snap["hits"] == 1 and snap["invalidations"] == 1

    def test_drop_shard_forgets_only_that_shard(self):
        cache = ShardResultCache()
        hits = [ScoredPoint(id=1, score=0.5)]
        cache.fill("c", 0, "a", hits, generation=0)
        cache.fill("c", 1, "b", hits, generation=0)
        cache.fill("d", 0, "e", hits, generation=0)
        assert cache.drop_shard("c", 0) == 1
        assert cache.lookup("c", 0, "a", 0) is None
        assert cache.lookup("c", 1, "b", 0) is not None
        assert cache.lookup("d", 0, "e", 0) is not None

    def test_entry_budget_evicts_lru(self):
        cache = ShardResultCache(CachePolicy(shard_max_entries=2))
        hits = [ScoredPoint(id=1, score=0.5)]
        for i, fp in enumerate(("a", "b", "c")):
            cache.fill("c", i, fp, hits, generation=0)
        assert cache.entry_count == 2
        assert cache.lookup("c", 0, "a", 0) is None
        assert cache.stats.snapshot()["evictions"] == 1


class TestExactScoredPointBytes:
    """Satellite regression: ``ScoredPoint`` lists must take the exact
    sizing path regardless of length — the sampled extrapolation used for
    other long homogeneous lists misestimates skewed hit lists, which is
    what the cache's byte budget is fed with."""

    @staticmethod
    def reference_bytes(obj):
        """Independent recursion with the documented unit conventions."""
        ref = TestExactScoredPointBytes.reference_bytes
        if obj is None:
            return 0
        if isinstance(obj, np.ndarray):
            return int(obj.nbytes)
        if isinstance(obj, str):
            return len(obj.encode("utf-8"))
        if isinstance(obj, bool):
            return 1
        if isinstance(obj, (int, float)):
            return 8
        if isinstance(obj, dict):
            return sum(ref(k) + ref(v) for k, v in obj.items())
        if isinstance(obj, (list, tuple)):
            return sum(ref(x) for x in obj)
        if isinstance(obj, ScoredPoint):
            return ref(vars(obj))
        raise AssertionError(f"unexpected type {type(obj)}")

    def _skewed_hits(self, n):
        rng = np.random.default_rng(3)
        hits = [
            ScoredPoint(id=i, score=float(i), payload={"i": i}, shard_id=i % 4)
            for i in range(n)
        ]
        # One fat outlier in the middle — invisible to head/tail sampling.
        hits[n // 2] = ScoredPoint(
            id=n, score=0.0, payload={"blob": "x" * 100_000},
            vector=rng.normal(size=256).astype(np.float32),
        )
        return hits

    @pytest.mark.parametrize("n", [3, 200])  # below and above the sample gate
    def test_exact_for_any_length(self, n):
        hits = self._skewed_hits(n)
        assert estimate_payload_bytes(hits) == self.reference_bytes(hits)

    def test_outlier_is_counted(self):
        hits = self._skewed_hits(200)
        assert estimate_payload_bytes(hits) > 100_000

    def test_search_result_subclass_takes_exact_path(self):
        # SearchResult is a slotted list subclass; element accounting must
        # be identical to a plain list of the same hits.
        hits = self._skewed_hits(64)
        assert estimate_payload_bytes(SearchResult(hits)) == estimate_payload_bytes(
            list(hits)
        )


class TestClusterCache:
    def test_repeat_query_is_hit_and_bit_identical(self):
        cluster = make_cluster()
        request = SearchRequest(vector=queries(1)[0], limit=10)
        first = cluster.search("papers", request)
        second = cluster.search("papers", request)
        assert hit_keys(first) == hit_keys(second)
        assert (first.shards_total, first.shards_answered) == (
            second.shards_total, second.shards_answered,
        )
        snap = cluster.result_cache.stats.snapshot()
        assert snap == dict(snap, lookups=2, hits=1, misses=1, fills=1)
        cluster.close()

    def test_write_invalidates_and_new_point_is_served(self):
        cluster = make_cluster()
        q = queries(1)[0]
        request = SearchRequest(vector=q, limit=5)
        stale = cluster.search("papers", request)
        assert all(h.id != 10_000 for h in stale)
        # The new point *is* the query vector: cosine-nearest by construction.
        cluster.upsert("papers", [PointStruct(id=10_000, vector=q)])
        fresh = cluster.search("papers", request)
        assert fresh[0].id == 10_000
        snap = cluster.result_cache.stats.snapshot()
        assert snap["invalidations"] == 1
        cluster.close()

    def test_shard_tier_skips_untouched_shards(self):
        cluster = make_cluster()
        request = SearchRequest(vector=queries(1)[0], limit=10)
        cluster.search("papers", request)  # fill both tiers
        # One-point write: bumps the epoch (cluster entry dies) but touches
        # a single shard — the other shards' work comes from the shard tier.
        cluster.upsert("papers", [PointStruct(id=5_000, vector=queries(2)[1])])
        before = cluster.telemetry()
        cluster.search("papers", request)
        delta = cluster.telemetry().diff(before)
        assert delta.cache.hits == 0 and delta.cache.misses == 1
        assert delta.cache.shard_hits >= 1
        assert delta.cache.shard_hits < delta.cache.shard_lookups
        cluster.close()

    def test_demux_serves_repeats_from_cache(self):
        cluster = make_cluster()
        reqs = [SearchRequest(vector=q, limit=5) for q in queries(4)]
        expected = cluster.search_batch_demux("papers", reqs)
        again = cluster.search_batch_demux("papers", reqs)
        for want, have in zip(expected, again):
            assert hit_keys(want) == hit_keys(have)
        snap = cluster.result_cache.stats.snapshot()
        assert snap["hits"] == len(reqs)
        # A mixed batch fans out only for the miss.
        mixed = reqs[:2] + [SearchRequest(vector=queries(9, seed=5)[-1], limit=5)]
        out = cluster.search_batch_demux("papers", mixed)
        assert hit_keys(out[0]) == hit_keys(expected[0])
        snap2 = cluster.result_cache.stats.snapshot()
        assert snap2["hits"] == len(reqs) + 2 and snap2["fills"] == len(reqs) + 1
        cluster.close()

    def test_empty_predicate_not_cached(self):
        cluster = make_cluster()
        reqs = [
            SearchRequest(vector=queries(1)[0], limit=5),
            SearchRequest(vector=queries(1)[0], limit=5, filter=HasId(frozenset())),
        ]
        out = cluster.search_batch_demux("papers", reqs)
        assert len(out[1]) == 0 and out[1].shards_total == 0
        assert cluster.result_cache.stats.snapshot()["fills"] == 1
        cluster.close()

    def test_alias_shares_entry_with_canonical_name(self):
        cluster = make_cluster()
        cluster.create_alias("lookup", "papers")
        request = SearchRequest(vector=queries(1)[0], limit=5)
        via_alias = cluster.search("lookup", request)
        via_name = cluster.search("papers", request)
        assert hit_keys(via_alias) == hit_keys(via_name)
        snap = cluster.result_cache.stats.snapshot()
        assert snap["hits"] == 1 and snap["fills"] == 1
        cluster.close()

    def test_degraded_results_never_cached(self):
        faulty = FaultInjectingTransport(LocalTransport())
        cluster = Cluster(faulty)
        for i in range(4):
            cluster.add_worker(Worker(f"w{i}"))
        cluster.create_collection(config(replication_factor=1))
        cluster.upsert("papers", points(N_POINTS))
        cluster.enable_cache()
        faulty.fail_worker("w1")
        request = SearchRequest(vector=queries(1)[0], limit=10, allow_partial=True)
        first = cluster.search("papers", request)
        second = cluster.search("papers", request)
        assert first.degraded and second.degraded
        snap = cluster.result_cache.stats.snapshot()
        assert snap["fills"] == 0 and snap["hits"] == 0
        cluster.close()

    def test_reshard_cutover_invalidates_but_results_unchanged(self):
        cluster = make_cluster(n_workers=3, shard_number=8)
        request = SearchRequest(vector=np.ones(DIM), limit=10)
        before = cluster.search("papers", request)
        moves = cluster.add_worker(Worker("w3"), rebalance=True)
        assert moves  # the newcomer actually received shards
        after = cluster.search("papers", request)
        assert hit_keys(after) == hit_keys(before)
        # The epoch moved with the migration: no stale hit was possible.
        snap = cluster.result_cache.stats.snapshot()
        assert snap["hits"] == 0 and snap["misses"] == 2
        cluster.close()

    def test_coalescer_dedupes_identical_queries(self):
        cluster = make_cluster()
        co = QueryCoalescer.for_cluster(
            cluster, policy=CoalescePolicy(max_wait_us=200_000.0, adaptive=False)
        )
        q = queries(1)[0]
        futures = [
            co.submit("papers", SearchRequest(vector=q, limit=5)) for _ in range(3)
        ]
        got = [f.result(timeout=10) for f in futures]
        assert hit_keys(got[0]) == hit_keys(got[1]) == hit_keys(got[2])
        snap = co.stats.snapshot()
        assert snap["deduped"] >= 2  # three identical queries, one fan-out
        cluster.close()

    def test_reset_telemetry_keeps_entries(self):
        cluster = make_cluster()
        request = SearchRequest(vector=queries(1)[0], limit=5)
        cluster.search("papers", request)
        cluster.search("papers", request)
        cluster.reset_telemetry()
        assert cluster.result_cache.stats.snapshot()["lookups"] == 0
        assert cluster.result_cache.entry_count == 1
        cluster.search("papers", request)  # still a hit: entries survived
        assert cluster.result_cache.stats.snapshot()["hits"] == 1
        cluster.close()

    def test_metrics_and_telemetry_surfaces(self):
        cluster = make_cluster()
        base = cluster.telemetry()
        request = SearchRequest(vector=queries(1)[0], limit=5)
        cluster.search("papers", request)
        cluster.search("papers", request)
        delta = cluster.telemetry().diff(base)
        assert delta.cache.lookups == 2
        assert delta.cache.hits == 1 and delta.cache.fills == 1
        assert delta.cache.hit_rate == 0.5
        assert delta.cache.entries == 1 and delta.cache.bytes > 0
        counters = cluster.metrics.counters()
        assert counters["cache.hit"].value == 1
        assert counters["cache.miss"].value == 1
        assert cluster.telemetry().histograms["cache.lookup_s"].count == 2
        cluster.close()

    def test_disable_cache_restores_plain_path(self):
        cluster = make_cluster()
        request = SearchRequest(vector=queries(1)[0], limit=5)
        expected = hit_keys(cluster.search("papers", request))
        cluster.disable_cache()
        assert cluster.result_cache is None
        assert hit_keys(cluster.search("papers", request)) == expected
        for worker in cluster.workers():
            assert worker.shard_cache_snapshot() is None
        cluster.close()

    def test_enable_cache_reaches_late_workers(self):
        cluster = make_cluster(n_workers=2, shard_number=8)
        cluster.add_worker(Worker("late"), rebalance=True)
        for worker in cluster.workers():
            assert worker.shard_cache_snapshot() is not None
        cluster.close()


class TestClientWiring:
    def test_sync_client_enables_cache(self):
        from repro.core.client import SyncClient

        cluster = make_cluster(cache=False)
        client = SyncClient(cluster, "papers", cache=True)
        assert cluster.result_cache is not None
        q = queries(1)[0]
        first = client.search(q, limit=5)
        second = client.search(q, limit=5)
        assert hit_keys(first) == hit_keys(second)
        assert cluster.result_cache.stats.snapshot()["hits"] == 1
        cluster.close()

    def test_sync_client_accepts_policy(self):
        from repro.core.client import SyncClient

        cluster = make_cluster(cache=False)
        SyncClient(cluster, "papers", cache=CachePolicy(max_entries=7))
        assert cluster.result_cache.policy.max_entries == 7
        cluster.close()

    def test_async_client_enables_cache(self):
        from repro.core.aioclient import AsyncClient

        cluster = make_cluster(cache=False)
        client = AsyncClient(cluster, "papers", cache=True)
        assert cluster.result_cache is not None
        client.close()
        cluster.close()

    def test_pool_reports_cache_counters(self):
        from repro.core.mpclient import ParallelClientPool

        cluster = make_cluster(cache=False)
        pool = ParallelClientPool(cluster, "papers")
        vectors = queries(4) * 3  # every vector repeated thrice
        results, report = pool.search_many(vectors, limit=5, cache=True,
                                           coalesce=False, clients=2)
        assert cluster.result_cache is not None
        assert report.cache["lookups"] == len(vectors)
        assert report.cache["hits"] >= 1
        assert report.cache_hit_rate == report.cache["hits"] / len(vectors)
        # Repeats are bit-identical to their first occurrence.
        for i, vec in enumerate(vectors[:4]):
            assert hit_keys(results[i]) == hit_keys(results[i + 4])
        cluster.close()
