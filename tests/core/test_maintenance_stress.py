"""Concurrent stress: writers + searchers + maintenance, with a full
invariant sweep at the end (no lost points, consistent id map, counts
add up).  Exercises both the explicit ``optimize()`` path and the
background :class:`MaintenanceDriver`.  A cached searcher thread rides
along, validating the generation fence under the same churn: a
shard-cache hit whose generation is still current must be bit-identical
to a live search."""

import threading
import time

import numpy as np
import pytest

from repro.core.cache import ShardResultCache
from repro.core.collection import Collection
from repro.core.maintenance import MaintenanceDriver
from repro.core.types import (
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)

DIM = 8
WRITERS = 3
IDS_PER_WRITER = 100_000  # disjoint id ranges: writer w owns [w*100k, …)
MAX_IDS_PER_WRITER = 4_000  # volume cap keeps segment sizes test-friendly
DURATION_S = 3.0


def config(name):
    # indexing_threshold=0 disables HNSW builds: a single build over the
    # volume these writers produce costs tens of seconds, which would turn
    # a concurrency stress into an index-build benchmark.  The swap/journal
    # machinery under test is identical either way; the maintenance bench
    # covers the in-flight-build scenario with sized segments.
    return CollectionConfig(
        name,
        VectorParams(size=DIM, distance=Distance.EUCLID),
        optimizer=OptimizerConfig(
            indexing_threshold=0,
            max_segments=4,
            merge_threshold=400,
            vacuum_min_deleted_ratio=0.2,
        ),
    )


class WriterState:
    """Ground truth one writer maintains about its own id range."""

    def __init__(self, writer_id):
        self.base = writer_id * IDS_PER_WRITER
        self.rng = np.random.default_rng(writer_id)
        self.live = {}  # pid -> last-written vector
        self.next_id = self.base

    def exhausted(self):
        return self.next_id - self.base >= MAX_IDS_PER_WRITER

    def step(self, col):
        roll = self.rng.random()
        if self.exhausted() and roll < 0.6:
            roll = 0.7  # out of fresh ids: rebalance toward overwrite/delete
        if (roll < 0.6 or not self.live) and not self.exhausted():
            n = int(self.rng.integers(4, 24))
            batch = []
            for _ in range(n):
                pid = self.next_id
                self.next_id += 1
                vec = self.rng.normal(size=DIM).astype(np.float32)
                batch.append(PointStruct(id=pid, vector=vec, payload={"w": self.base}))
                self.live[pid] = vec
            col.upsert(batch)
        elif not self.live:
            return
        elif roll < 0.8:
            # overwrite some existing points with new vectors
            pids = list(self.live)[: int(self.rng.integers(1, 8))]
            batch = []
            for pid in pids:
                vec = self.rng.normal(size=DIM).astype(np.float32)
                batch.append(PointStruct(id=pid, vector=vec, payload={"w": self.base}))
                self.live[pid] = vec
            col.upsert(batch)
        else:
            pids = list(self.live)[: int(self.rng.integers(1, 12))]
            for pid in pids:
                del self.live[pid]
            col.delete(pids)


def run_stress(col, *, explicit_optimize):
    states = [WriterState(w) for w in range(WRITERS)]
    stop = threading.Event()
    errors = []

    def writer(state):
        try:
            while not stop.is_set():
                state.step(col)
        except Exception as exc:  # pragma: no cover - surfaces in assert
            errors.append(exc)

    def searcher():
        rng = np.random.default_rng(99)
        try:
            while not stop.is_set():
                col.search(SearchRequest(vector=rng.normal(size=DIM), limit=10))
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    def optimizer_loop():
        try:
            while not stop.is_set():
                col.optimize()
                time.sleep(0.005)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    def cached_searcher():
        """Generation-fenced caching under full churn.

        Mirrors the worker shard tier: fill only when the generation did
        not move across the search, serve only at the exact fill-time
        generation.  Whenever a hit's generation is *still* current after
        an immediate recompute, the two must agree bit for bit — writers,
        overwrites, deletes and maintenance swaps notwithstanding.
        """
        cache = ShardResultCache()
        rng = np.random.default_rng(1234)
        queries = rng.normal(size=(8, DIM)).astype(np.float32)
        name = col.config.name
        verified = 0
        try:
            while not stop.is_set():
                request = SearchRequest(
                    vector=queries[int(rng.integers(len(queries)))], limit=10
                )
                fp = request.fingerprint(name)
                gen = col.generation
                hit = cache.lookup(name, 0, fp, gen)
                if hit is not None:
                    fresh = col.search(request)
                    if col.generation == gen:
                        assert [(h.id, h.score) for h in hit] == [
                            (h.id, h.score) for h in fresh
                        ], "stale cached result served at a current generation"
                        verified += 1
                    continue
                hits = col.search(request)
                if col.generation == gen:  # unchanged across the search
                    cache.fill(name, 0, fp, list(hits), generation=gen)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(s,)) for s in states]
    threads.append(threading.Thread(target=searcher))
    threads.append(threading.Thread(target=cached_searcher))
    if explicit_optimize:
        threads.append(threading.Thread(target=optimizer_loop))
    for t in threads:
        t.start()
    time.sleep(DURATION_S)
    stop.set()
    for t in threads:
        t.join()
    assert not errors, errors
    return states


def assert_invariants(col, states):
    """The full sweep: segments, id map, counts, vectors, payload."""
    expected = {}
    for state in states:
        overlap = expected.keys() & state.live.keys()
        assert not overlap  # writer id ranges are disjoint by construction
        expected.update(state.live)

    segments = col.segments
    seen = {}
    for seg in segments:
        for pid in seg.point_ids():
            assert pid not in seen, f"point {pid} duplicated across segments"
            seen[pid] = seg

    lost = expected.keys() - seen.keys()
    phantom = seen.keys() - expected.keys()
    assert not lost, f"{len(lost)} upserted points vanished, e.g. {sorted(lost)[:5]}"
    assert not phantom, f"{len(phantom)} deleted points resurrected"

    id_map = col._id_to_segment
    assert set(id_map) == set(seen), "id map diverged from segment contents"
    for pid, seg in id_map.items():
        assert seg.contains(pid)
        assert any(seg is s for s in segments), "id map references dropped segment"

    assert len(col) == len(expected)

    # Vector contents: every live point serves its last-written vector.
    sample = list(expected)[:: max(1, len(expected) // 500)]
    for pid in sample:
        rec = col.retrieve(pid, with_vector=True)
        np.testing.assert_array_equal(
            np.asarray(rec.vector, dtype=np.float32), expected[pid],
            err_msg=f"point {pid} serves a stale vector",
        )


@pytest.mark.slow
def test_stress_explicit_optimize():
    """Writers + searcher + a thread hammering ``optimize()``."""
    col = Collection(config("stress-opt"))
    states = run_stress(col, explicit_optimize=True)
    col.optimize()
    assert_invariants(col, states)


@pytest.mark.slow
def test_stress_background_driver():
    """Writers + searcher with the background driver doing maintenance."""
    col = Collection(config("stress-drv"))
    driver = MaintenanceDriver(col, interval_s=0.01).start()
    try:
        states = run_stress(col, explicit_optimize=False)
    finally:
        driver.stop(drain=True)
    assert driver.stats.snapshot()["errors"] == 0
    assert driver.stats.snapshot()["passes"] > 0
    assert_invariants(col, states)
