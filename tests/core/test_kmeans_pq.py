"""k-means and product-quantization tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index.kmeans import assign_clusters, kmeans
from repro.core.index.pq import ProductQuantizer


class TestKmeans:
    def test_separated_clusters_recovered(self):
        rng = np.random.default_rng(0)
        centers = np.array([[0, 0], [10, 10], [-10, 10]], dtype=np.float32)
        data = np.concatenate(
            [c + 0.1 * rng.normal(size=(50, 2)).astype(np.float32) for c in centers]
        )
        centroids, assignments = kmeans(data, 3, seed=1)
        # each true cluster maps to exactly one learned centroid
        for i in range(3):
            block = assignments[i * 50 : (i + 1) * 50]
            assert len(set(block.tolist())) == 1
        assert len(set(assignments.tolist())) == 3

    def test_k_clamped(self):
        data = np.random.default_rng(1).normal(size=(3, 4)).astype(np.float32)
        centroids, assignments = kmeans(data, 10)
        assert centroids.shape[0] == 3

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 4), dtype=np.float32), 2)

    def test_deterministic(self):
        data = np.random.default_rng(2).normal(size=(100, 8)).astype(np.float32)
        c1, a1 = kmeans(data, 5, seed=42)
        c2, a2 = kmeans(data, 5, seed=42)
        assert np.array_equal(a1, a2) and np.allclose(c1, c2)

    def test_assign_matches_nearest(self):
        data = np.random.default_rng(3).normal(size=(50, 4)).astype(np.float32)
        centroids = np.random.default_rng(4).normal(size=(6, 4)).astype(np.float32)
        assigned = assign_clusters(data, centroids)
        ref = np.argmin(
            np.sum((data[:, None, :] - centroids[None, :, :]) ** 2, axis=2), axis=1
        )
        assert np.array_equal(assigned, ref)

    @given(st.integers(2, 30), st.integers(1, 8))
    @settings(max_examples=15, deadline=None)
    def test_inertia_no_worse_than_random_assignment(self, n, k):
        data = np.random.default_rng(n).normal(size=(n, 4)).astype(np.float32)
        centroids, assignments = kmeans(data, k, seed=0)
        inertia = float(np.sum((data - centroids[assignments]) ** 2))
        rng = np.random.default_rng(1)
        random_assign = rng.integers(0, centroids.shape[0], size=n)
        random_inertia = float(np.sum((data - centroids[random_assign]) ** 2))
        assert inertia <= random_inertia + 1e-4


class TestProductQuantizer:
    def test_dim_divisibility(self):
        with pytest.raises(ValueError):
            ProductQuantizer(10, m=3)

    def test_bits_range(self):
        with pytest.raises(ValueError):
            ProductQuantizer(8, m=2, bits=0)

    def test_requires_training(self):
        pq = ProductQuantizer(8, m=2)
        with pytest.raises(RuntimeError):
            pq.encode(np.zeros(8, dtype=np.float32))

    def test_roundtrip_shapes(self):
        pq = ProductQuantizer(16, m=4, bits=4)
        data = np.random.default_rng(0).normal(size=(200, 16)).astype(np.float32)
        pq.train(data)
        codes = pq.encode(data)
        assert codes.shape == (200, 4) and codes.dtype == np.uint8
        recon = pq.decode(codes)
        assert recon.shape == (200, 16)

    def test_single_vector_roundtrip(self):
        pq = ProductQuantizer(8, m=2, bits=4)
        data = np.random.default_rng(1).normal(size=(100, 8)).astype(np.float32)
        pq.train(data)
        code = pq.encode(data[0])
        assert code.shape == (2,)
        assert pq.decode(code).shape == (8,)

    def test_more_bits_lower_error(self):
        data = np.random.default_rng(2).normal(size=(400, 16)).astype(np.float32)
        errors = []
        for bits in (2, 4, 6):
            pq = ProductQuantizer(16, m=4, bits=bits)
            pq.train(data)
            errors.append(pq.reconstruction_error(data))
        assert errors[0] > errors[1] > errors[2]

    def test_adc_close_to_true_distance(self):
        data = np.random.default_rng(3).normal(size=(300, 16)).astype(np.float32)
        pq = ProductQuantizer(16, m=4, bits=8)
        pq.train(data)
        codes = pq.encode(data)
        q = data[0]
        table = pq.adc_table(q)
        adc = ProductQuantizer.adc_scores(table, codes)
        true = np.sum((data - q) ** 2, axis=1)
        # ADC approximates true distances; correlation should be strong
        corr = np.corrcoef(adc, true)[0, 1]
        assert corr > 0.9

    def test_adc_table_shape(self):
        pq = ProductQuantizer(8, m=2, bits=3)
        data = np.random.default_rng(4).normal(size=(50, 8)).astype(np.float32)
        pq.train(data)
        assert pq.adc_table(data[0]).shape == (2, 8)

    def test_uint16_codes_for_wide_books(self):
        pq = ProductQuantizer(8, m=2, bits=10)
        assert pq.code_dtype == np.uint16
