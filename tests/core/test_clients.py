"""Client-stack tests: sync, asyncio, and parallel-pool clients."""

import numpy as np
import pytest

from repro.core import (
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    VectorParams,
)
from repro.core.aioclient import AsyncClient
from repro.core.client import SyncClient, chunk
from repro.core.cluster import Cluster
from repro.core.mpclient import ParallelClientPool

DIM = 8


def make_cluster(n_workers=2) -> Cluster:
    cluster = Cluster.with_workers(n_workers)
    cluster.create_collection(
        CollectionConfig(
            "c", VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(indexing_threshold=0),
        )
    )
    return cluster


def points(n, seed=0):
    rng = np.random.default_rng(seed)
    return [PointStruct(id=i, vector=rng.normal(size=DIM)) for i in range(n)]


class TestChunk:
    def test_chunks(self):
        assert [list(c) for c in chunk(list(range(7)), 3)] == [[0, 1, 2], [3, 4, 5], [6]]

    def test_exact_multiple(self):
        assert len(list(chunk(list(range(6)), 3))) == 2

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(chunk([1], 0))


class TestSyncClient:
    def test_upload_and_search(self):
        cluster = make_cluster()
        client = SyncClient(cluster, "c")
        n = client.upload(points(100), batch_size=32)
        assert n == 100 and client.count() == 100
        target = client.retrieve(42, with_vector=True).vector
        hits = client.search(target, limit=1)
        assert hits[0].id == 42

    def test_timings_recorded(self):
        cluster = make_cluster()
        client = SyncClient(cluster, "c")
        client.upload(points(64), batch_size=16)
        assert len(client.upload_timings.convert) == 4
        assert client.upload_timings.total > 0
        client.reset_timings()
        assert client.upload_timings.convert == []

    def test_search_many_batching(self):
        cluster = make_cluster()
        client = SyncClient(cluster, "c")
        client.upload(points(50))
        qs = np.random.default_rng(1).normal(size=(10, DIM))
        results = client.search_many(qs, limit=3, batch_size=4)
        assert len(results) == 10
        assert all(len(r) == 3 for r in results)
        assert len(client.query_timings.request) == 3  # ceil(10/4)

    def test_amdahl_helper(self):
        cluster = make_cluster()
        client = SyncClient(cluster, "c")
        client.upload(points(64), batch_size=16)
        assert client.upload_timings.amdahl_max_speedup() > 1.0


class TestAsyncClient:
    def test_upload_matches_sync(self):
        cluster = make_cluster()
        client = AsyncClient(cluster, "c")
        report = client.upload(points(96), batch_size=32, concurrency=2)
        client.close()
        assert report.batches == 3
        assert cluster.count("c") == 96
        assert report.total_s > 0
        assert report.mean_await_ms >= 0

    def test_concurrency_validation(self):
        cluster = make_cluster()
        client = AsyncClient(cluster, "c")
        with pytest.raises(ValueError):
            client.upload(points(10), concurrency=0)
        client.close()

    def test_search_many_preserves_order(self):
        cluster = make_cluster()
        sync = SyncClient(cluster, "c")
        sync.upload(points(80))
        client = AsyncClient(cluster, "c")
        rng = np.random.default_rng(2)
        qs = [rng.normal(size=DIM) for _ in range(12)]
        results, report = client.search_many(qs, limit=5, batch_size=4, concurrency=3)
        client.close()
        assert len(results) == 12 and report.batches == 3
        # order preserved: compare against direct searches
        for q, hits in zip(qs, results):
            direct = sync.search(q, limit=5)
            assert [h.id for h in hits] == [h.id for h in direct]

    def test_timings_decomposed(self):
        cluster = make_cluster()
        client = AsyncClient(cluster, "c")
        report = client.upload(points(64), batch_size=16, concurrency=2)
        client.close()
        assert len(report.timings.convert) == 4
        assert len(report.timings.request) == 4


class TestParallelClientPool:
    def test_upload_partitions_by_worker(self):
        cluster = make_cluster(4)
        pool = ParallelClientPool(cluster, "c")
        report = pool.upload(points(200), batch_size=32)
        assert report.points == 200
        assert report.clients == 4
        assert cluster.count("c") == 200
        assert sum(report.batches_per_client.values()) >= 200 // 32

    def test_single_worker_runs_inline(self):
        cluster = make_cluster(1)
        pool = ParallelClientPool(cluster, "c")
        report = pool.upload(points(50), batch_size=10)
        assert report.clients == 1 and cluster.count("c") == 50

    def test_throughput_reported(self):
        cluster = make_cluster(2)
        pool = ParallelClientPool(cluster, "c")
        report = pool.upload(points(64))
        assert report.throughput_pps > 0

    def test_data_correct_after_pool_upload(self):
        cluster = make_cluster(4)
        pool = ParallelClientPool(cluster, "c")
        pts = points(120, seed=7)
        pool.upload(pts)
        rec = cluster.retrieve("c", 77, with_vector=True)
        expected = pts[77].as_array()
        expected = expected / np.linalg.norm(expected)
        assert np.allclose(rec.vector, expected, atol=1e-5)
