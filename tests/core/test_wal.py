"""Write-ahead log tests: framing, replay, torn tails, corruption."""

import os

import numpy as np
import pytest

from repro.core.errors import WALCorruptionError
from repro.core.wal import COLUMNAR_UPSERT_OP, WriteAheadLog


def wal_path(tmp_path) -> str:
    return str(tmp_path / "test.wal")


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("upsert", [(1, [0.5], None)])
            wal.append("delete", [1])
        records = list(WriteAheadLog(path).replay())
        assert [(r.seq, r.op) for r in records] == [(0, "upsert"), (1, "delete")]
        assert records[0].data == [(1, [0.5], None)]

    def test_sequence_continues_after_reopen(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("upsert", "a")
        with WriteAheadLog(path) as wal:
            assert wal.next_seq == 1
            rec = wal.append("upsert", "b")
            assert rec.seq == 1

    def test_empty_log_replays_nothing(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        assert list(wal.replay()) == []
        wal.close()

    def test_truncate(self, tmp_path):
        path = wal_path(tmp_path)
        wal = WriteAheadLog(path)
        wal.append("upsert", "x")
        wal.truncate()
        assert list(wal.replay()) == []
        rec = wal.append("upsert", "y")
        assert rec.seq == 1  # sequence keeps monotonic even after truncate
        wal.close()

    def test_size_bytes_grows(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        before = wal.size_bytes()
        wal.append("upsert", list(range(100)))
        assert wal.size_bytes() > before
        wal.close()


class TestCrashSafety:
    def test_torn_tail_is_truncated(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("upsert", "first")
            wal.append("upsert", "second")
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)  # tear the last record
        records = list(WriteAheadLog(path).replay())
        assert [r.data for r in records] == ["first"]
        # after trim, appends produce a consistent log
        with WriteAheadLog(path) as wal:
            wal.append("upsert", "third")
        datas = [r.data for r in WriteAheadLog(path).replay()]
        assert datas == ["first", "third"]

    def test_corrupt_body_raises(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("upsert", "payload-data-here")
            wal.append("upsert", "second")
        with open(path, "r+b") as fh:
            fh.seek(25)  # inside the first record's body
            fh.write(b"\xff\xff")
        with pytest.raises(WALCorruptionError):
            list(WriteAheadLog(path).replay())

    def test_bad_magic_raises(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("upsert", "x")
        with open(path, "r+b") as fh:
            fh.write(b"XXXX")
        with pytest.raises(WALCorruptionError):
            list(WriteAheadLog(path).replay())

    def test_torn_header_only(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("upsert", "x")
        with open(path, "ab") as fh:
            fh.write(b"RWAL\x00\x01")  # partial header
        records = list(WriteAheadLog(path).replay())
        assert len(records) == 1


class TestSyncMode:
    def test_sync_every_write(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path), sync_every_write=True)
        wal.append("upsert", "durable")
        assert [r.data for r in wal.replay()] == ["durable"]
        wal.close()


class TestColumnarRecords:
    def test_roundtrip_vectors_bit_identical(self, tmp_path):
        path = wal_path(tmp_path)
        rng = np.random.default_rng(7)
        ids = np.arange(10, dtype=np.int64)
        vectors = rng.normal(size=(10, 4)).astype(np.float32)
        with WriteAheadLog(path) as wal:
            wal.append_columnar(ids, vectors)
        (rec,) = WriteAheadLog(path).replay()
        assert rec.op == COLUMNAR_UPSERT_OP
        got_ids, got_vectors, got_payloads = rec.data
        np.testing.assert_array_equal(got_ids, ids)
        assert got_vectors.dtype == np.float32
        assert np.array_equal(
            got_vectors.view(np.uint32), vectors.view(np.uint32)
        )  # bit identical, not just approximately equal
        assert got_payloads is None

    def test_roundtrip_with_payloads(self, tmp_path):
        path = wal_path(tmp_path)
        ids = np.asarray([3, 5], dtype=np.int64)
        vectors = np.asarray([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        payloads = [{"tag": "a"}, None]
        with WriteAheadLog(path) as wal:
            wal.append_columnar(ids, vectors, payloads)
        (rec,) = WriteAheadLog(path).replay()
        assert rec.data[2] == payloads

    def test_interleaves_with_pickled_records(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("delete", [1, 2])
            wal.append_columnar(
                np.asarray([9], dtype=np.int64),
                np.asarray([[0.5, 0.5]], dtype=np.float32),
            )
            wal.append("set_payload", (9, {"x": 1}))
        ops = [r.op for r in WriteAheadLog(path).replay()]
        assert ops == ["delete", COLUMNAR_UPSERT_OP, "set_payload"]

    def test_shape_mismatch_rejected(self, tmp_path):
        with WriteAheadLog(wal_path(tmp_path)) as wal:
            with pytest.raises(ValueError):
                wal.append_columnar(
                    np.asarray([1, 2], dtype=np.int64),
                    np.asarray([[1.0, 2.0]], dtype=np.float32),
                )

    def test_corrupt_columnar_body_raises(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append_columnar(
                np.arange(4, dtype=np.int64),
                np.ones((4, 8), dtype=np.float32),
            )
            wal.append("upsert", "after")
        with open(path, "r+b") as fh:
            fh.seek(30)  # inside the first record's body
            fh.write(b"\xde\xad")
        with pytest.raises(WALCorruptionError):
            list(WriteAheadLog(path).replay())


class TestGroupCommit:
    def test_flushes_every_n_appends(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path), flush_every_n=4)
        for i in range(10):
            wal.append("upsert", i)
        assert wal.append_count == 10
        assert wal.flush_count == 2  # after appends 4 and 8
        assert wal.pending_records == 2
        wal.close()
        assert wal.flush_count == 3  # close drains the partial group

    def test_unflushed_group_invisible_until_flush(self, tmp_path):
        path = wal_path(tmp_path)
        wal = WriteAheadLog(path, flush_every_n=8)
        for i in range(3):
            wal.append("upsert", i)
        # Nothing has reached the OS yet: a crash here would lose the group.
        assert os.path.getsize(path) == 0
        assert wal.pending_records == 3
        wal.flush()
        assert os.path.getsize(path) > 0
        assert wal.pending_records == 0
        wal.close()

    def test_live_replay_sees_buffered_group(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path), flush_every_n=100)
        wal.append("upsert", "buffered")
        assert [r.data for r in wal.replay()] == ["buffered"]
        wal.close()

    def test_flush_interval_triggers(self, tmp_path):
        wal = WriteAheadLog(
            wal_path(tmp_path), flush_every_n=1000, flush_interval_s=0.0
        )
        wal.append("upsert", "a")  # interval 0 => every append flushes
        assert wal.pending_records == 0
        wal.close()

    def test_torn_partial_final_group(self, tmp_path):
        """Crash mid group-commit: a torn *suffix* of the group is trimmed,
        the flushed prefix and the intact records before the tear survive."""
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("upsert", "flushed")  # flush_every_n=1: on disk
        with WriteAheadLog(path, flush_every_n=4) as wal:
            for i in range(3):
                wal.append("upsert", f"group-{i}")  # close() flushes them
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 5)  # tear the group's tail
        datas = [r.data for r in WriteAheadLog(path).replay()]
        assert datas == ["flushed", "group-0", "group-1"]

    def test_torn_columnar_tail(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("upsert", "keep")
            wal.append_columnar(
                np.arange(8, dtype=np.int64), np.ones((8, 16), dtype=np.float32)
            )
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 1)
        datas = [r.data for r in WriteAheadLog(path).replay()]
        assert datas == ["keep"]

    def test_group_commit_survives_reopen(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, flush_every_n=3) as wal:
            for i in range(7):
                wal.append("upsert", i)
        with WriteAheadLog(path, flush_every_n=3) as wal:
            assert wal.next_seq == 7
        assert [r.data for r in WriteAheadLog(path).replay()] == list(range(7))


class TestBoundedReplay:
    def test_max_record_bytes_cap(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("upsert", list(range(1000)))
        with pytest.raises(WALCorruptionError):
            list(WriteAheadLog(path).replay(max_record_bytes=16))

    def test_streaming_replay_many_records(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, flush_every_n=64) as wal:
            for i in range(500):
                wal.append("upsert", i)
        count = 0
        for rec in WriteAheadLog(path).replay(max_record_bytes=1 << 20):
            assert rec.data == count
            count += 1
        assert count == 500
