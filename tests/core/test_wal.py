"""Write-ahead log tests: framing, replay, torn tails, corruption."""

import os

import pytest

from repro.core.errors import WALCorruptionError
from repro.core.wal import WriteAheadLog


def wal_path(tmp_path) -> str:
    return str(tmp_path / "test.wal")


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("upsert", [(1, [0.5], None)])
            wal.append("delete", [1])
        records = list(WriteAheadLog(path).replay())
        assert [(r.seq, r.op) for r in records] == [(0, "upsert"), (1, "delete")]
        assert records[0].data == [(1, [0.5], None)]

    def test_sequence_continues_after_reopen(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("upsert", "a")
        with WriteAheadLog(path) as wal:
            assert wal.next_seq == 1
            rec = wal.append("upsert", "b")
            assert rec.seq == 1

    def test_empty_log_replays_nothing(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        assert list(wal.replay()) == []
        wal.close()

    def test_truncate(self, tmp_path):
        path = wal_path(tmp_path)
        wal = WriteAheadLog(path)
        wal.append("upsert", "x")
        wal.truncate()
        assert list(wal.replay()) == []
        rec = wal.append("upsert", "y")
        assert rec.seq == 1  # sequence keeps monotonic even after truncate
        wal.close()

    def test_size_bytes_grows(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        before = wal.size_bytes()
        wal.append("upsert", list(range(100)))
        assert wal.size_bytes() > before
        wal.close()


class TestCrashSafety:
    def test_torn_tail_is_truncated(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("upsert", "first")
            wal.append("upsert", "second")
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)  # tear the last record
        records = list(WriteAheadLog(path).replay())
        assert [r.data for r in records] == ["first"]
        # after trim, appends produce a consistent log
        with WriteAheadLog(path) as wal:
            wal.append("upsert", "third")
        datas = [r.data for r in WriteAheadLog(path).replay()]
        assert datas == ["first", "third"]

    def test_corrupt_body_raises(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("upsert", "payload-data-here")
            wal.append("upsert", "second")
        with open(path, "r+b") as fh:
            fh.seek(25)  # inside the first record's body
            fh.write(b"\xff\xff")
        with pytest.raises(WALCorruptionError):
            list(WriteAheadLog(path).replay())

    def test_bad_magic_raises(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("upsert", "x")
        with open(path, "r+b") as fh:
            fh.write(b"XXXX")
        with pytest.raises(WALCorruptionError):
            list(WriteAheadLog(path).replay())

    def test_torn_header_only(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as wal:
            wal.append("upsert", "x")
        with open(path, "ab") as fh:
            fh.write(b"RWAL\x00\x01")  # partial header
        records = list(WriteAheadLog(path).replay())
        assert len(records) == 1


class TestSyncMode:
    def test_sync_every_write(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path), sync_every_write=True)
        wal.append("upsert", "durable")
        assert [r.data for r in wal.replay()] == ["durable"]
        wal.close()
