"""Unit tests for the failure-handling primitives (`repro.core.failover`)."""

import pytest

from repro.core.failover import (
    BreakerState,
    FailoverStats,
    HealthTracker,
    RetryPolicy,
)


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# -- RetryPolicy --------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        p = RetryPolicy()
        assert p.backoff_s(1, key="w0:search") == p.backoff_s(1, key="w0:search")
        assert p.backoff_s(2, key="w0:search") == p.backoff_s(2, key="w0:search")

    def test_backoff_grows_exponentially_within_jitter(self):
        p = RetryPolicy(base_backoff_s=0.01, backoff_multiplier=2.0,
                        max_backoff_s=10.0, jitter_fraction=0.25)
        for retry, nominal in ((1, 0.01), (2, 0.02), (3, 0.04)):
            b = p.backoff_s(retry, key="k")
            assert nominal * 0.75 <= b <= nominal * 1.25

    def test_backoff_capped_at_max(self):
        p = RetryPolicy(base_backoff_s=0.1, backoff_multiplier=10.0,
                        max_backoff_s=0.5, jitter_fraction=0.0)
        assert p.backoff_s(5) == 0.5

    def test_jitter_varies_by_key_and_retry(self):
        p = RetryPolicy(base_backoff_s=0.1, max_backoff_s=0.1)
        values = {p.backoff_s(1, key="a"), p.backoff_s(1, key="b"),
                  p.backoff_s(2, key="a")}
        assert len(values) == 3  # splitmix64 spreads keys/retries apart

    def test_zero_jitter_is_exact(self):
        p = RetryPolicy(base_backoff_s=0.01, jitter_fraction=0.0)
        assert p.backoff_s(1) == 0.01
        assert p.backoff_s(2) == 0.02

    def test_retry_zero_is_free(self):
        assert RetryPolicy().backoff_s(0) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_backoff_s": -1.0},
            {"jitter_fraction": 1.5},
            {"timeout_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


# -- HealthTracker -----------------------------------------------------------


class TestHealthTracker:
    def test_starts_closed_and_admits(self):
        h = HealthTracker()
        assert h.state("w0") is BreakerState.CLOSED
        assert h.admit("w0")

    def test_opens_at_consecutive_failure_threshold(self):
        h = HealthTracker(failure_threshold=3)
        h.record_failure("w0")
        h.record_failure("w0")
        assert h.state("w0") is BreakerState.CLOSED
        h.record_failure("w0")
        assert h.state("w0") is BreakerState.OPEN
        assert not h.admit("w0")

    def test_success_resets_consecutive_count(self):
        h = HealthTracker(failure_threshold=2)
        h.record_failure("w0")
        h.record_success("w0")
        h.record_failure("w0")
        assert h.state("w0") is BreakerState.CLOSED  # never 2 in a row

    def test_half_open_after_cooldown_admits_one_probe(self):
        clock = FakeClock()
        h = HealthTracker(failure_threshold=1, reset_timeout_s=1.0, clock=clock)
        h.record_failure("w0")
        assert not h.admit("w0")
        clock.advance(1.0)
        assert h.admit("w0")  # the probe
        assert h.state("w0") is BreakerState.HALF_OPEN
        assert not h.admit("w0")  # only one probe in flight

    def test_probe_success_closes(self):
        clock = FakeClock()
        h = HealthTracker(failure_threshold=1, reset_timeout_s=1.0, clock=clock)
        h.record_failure("w0")
        clock.advance(1.0)
        assert h.admit("w0")
        h.record_success("w0")
        assert h.state("w0") is BreakerState.CLOSED
        assert h.admit("w0")

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        h = HealthTracker(failure_threshold=1, reset_timeout_s=1.0, clock=clock)
        h.record_failure("w0")
        clock.advance(1.0)
        assert h.admit("w0")
        h.record_failure("w0")
        assert h.state("w0") is BreakerState.OPEN
        clock.advance(0.5)
        assert not h.admit("w0")  # cooldown restarted at the probe failure
        clock.advance(0.5)
        assert h.admit("w0")

    def test_transitions_feed_stats(self):
        clock = FakeClock()
        stats = FailoverStats()
        h = HealthTracker(failure_threshold=1, reset_timeout_s=1.0,
                          clock=clock, stats=stats)
        h.record_failure("w0")          # -> OPEN
        clock.advance(1.0)
        h.admit("w0")                   # -> HALF_OPEN
        h.record_success("w0")          # -> CLOSED
        assert stats.breaker_opens == 1
        assert stats.breaker_half_opens == 1
        assert stats.breaker_closes == 1

    def test_forget_drops_state(self):
        h = HealthTracker(failure_threshold=1)
        h.record_failure("w0")
        h.forget("w0")
        assert h.state("w0") is BreakerState.CLOSED
        assert "w0" not in h.states()

    def test_workers_are_independent(self):
        h = HealthTracker(failure_threshold=1)
        h.record_failure("w0")
        assert h.state("w0") is BreakerState.OPEN
        assert h.state("w1") is BreakerState.CLOSED


# -- FailoverStats ------------------------------------------------------------


class TestFailoverStats:
    def test_counters(self):
        s = FailoverStats()
        s.record_retry()
        s.record_failover(3)
        s.record_timeout()
        s.record_degraded()
        assert (s.retries, s.failovers, s.timeouts, s.degraded_queries) == (1, 3, 1, 1)
        s.reset()
        assert (s.retries, s.failovers, s.timeouts, s.degraded_queries) == (0, 0, 0, 0)
