"""Shard routing and placement tests (with hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ClusterConfigError
from repro.core.router import PlacementPlan, ShardRouter, splitmix64, splitmix64_array


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_mixes_consecutive_inputs(self):
        outputs = {splitmix64(i) % 16 for i in range(64)}
        assert len(outputs) == 16  # all buckets hit by 64 consecutive ids

    @given(st.lists(st.integers(0, 2**62), min_size=1, max_size=200))
    def test_vectorized_matches_scalar(self, ids):
        vectorized = splitmix64_array(np.asarray(ids, dtype=np.int64))
        assert vectorized.dtype == np.uint64
        assert [int(h) for h in vectorized] == [splitmix64(pid) for pid in ids]


class TestVectorizedRouting:
    @given(st.lists(st.integers(0, 10**12), max_size=300), st.integers(1, 64))
    def test_shards_for_array_matches_shard_for(self, ids, shards):
        router = ShardRouter(shards)
        assigned = router.shards_for_array(np.asarray(ids, dtype=np.int64))
        assert [int(s) for s in assigned] == [router.shard_for(pid) for pid in ids]

    def test_partition_large_uses_same_assignment_as_small(self):
        # The partition() fast path kicks in above the small-batch cutoff;
        # both paths must agree and preserve in-shard arrival order.
        ids = list(range(1000, 1200))
        router = ShardRouter(8)
        big = router.partition(ids)
        small = {}
        for pid in ids:
            small.setdefault(router.shard_for(pid), []).append(pid)
        assert {s: list(chunk) for s, chunk in big.items()} == small

    @given(st.lists(st.integers(0, 10**9), min_size=1, max_size=200, unique=True),
           st.integers(1, 16))
    def test_partition_rows_consistent_with_partition(self, ids, shards):
        router = ShardRouter(shards)
        rows = router.partition_rows(ids)
        by_rows = {s: [ids[i] for i in idx] for s, idx in rows.items()}
        assert by_rows == {s: list(chunk) for s, chunk in router.partition(ids).items()}


class TestShardRouter:
    def test_rejects_zero_shards(self):
        with pytest.raises(ClusterConfigError):
            ShardRouter(0)

    @given(st.lists(st.integers(0, 10**9), max_size=200), st.integers(1, 32))
    def test_partition_covers_all_ids(self, ids, shards):
        router = ShardRouter(shards)
        parts = router.partition(ids)
        flat = [pid for chunk in parts.values() for pid in chunk]
        assert sorted(flat) == sorted(ids)
        assert all(0 <= s < shards for s in parts)

    @given(st.integers(0, 10**12), st.integers(1, 64))
    def test_stable_assignment(self, pid, shards):
        router = ShardRouter(shards)
        assert router.shard_for(pid) == router.shard_for(pid)

    def test_roughly_uniform(self):
        router = ShardRouter(8)
        counts = [0] * 8
        for pid in range(8000):
            counts[router.shard_for(pid)] += 1
        assert min(counts) > 800 and max(counts) < 1200


class TestPlacementPlan:
    def test_one_shard_per_worker_default_layout(self):
        plan = PlacementPlan(worker_ids=["w0", "w1", "w2"], shard_number=3)
        assert plan.primary_for(0) == "w0"
        assert plan.primary_for(1) == "w1"
        assert plan.shards_on("w2") == [2]

    def test_replication_distinct_workers(self):
        plan = PlacementPlan(worker_ids=[f"w{i}" for i in range(4)],
                             shard_number=4, replication_factor=2)
        for shard in range(4):
            holders = plan.workers_for(shard)
            assert len(holders) == 2 and len(set(holders)) == 2

    def test_replication_exceeding_workers_rejected(self):
        with pytest.raises(ClusterConfigError):
            PlacementPlan(worker_ids=["w0"], shard_number=1, replication_factor=2)

    def test_empty_workers_rejected(self):
        with pytest.raises(ClusterConfigError):
            PlacementPlan(worker_ids=[], shard_number=1)

    def test_load_balanced(self):
        plan = PlacementPlan(worker_ids=[f"w{i}" for i in range(4)],
                             shard_number=8, replication_factor=2)
        load = plan.load()
        assert max(load.values()) - min(load.values()) <= 1


class TestRebalance:
    def test_add_worker_moves_minimal(self):
        plan = PlacementPlan(worker_ids=["w0", "w1"], shard_number=4)
        new_plan, moves = plan.rebalance(["w0", "w1", "w2"])
        # only shards that gained w2 moved
        assert all(m.target == "w2" for m in moves)
        assert new_plan.replica_count(0) == 1

    def test_remove_worker_recovers_replicas(self):
        plan = PlacementPlan(worker_ids=["w0", "w1", "w2"], shard_number=3,
                             replication_factor=2)
        new_plan, moves = plan.rebalance(["w0", "w1"])
        for shard in range(3):
            holders = new_plan.workers_for(shard)
            assert len(holders) == 2
            assert "w2" not in holders

    def test_surviving_replicas_stay_put(self):
        plan = PlacementPlan(worker_ids=["w0", "w1", "w2", "w3"], shard_number=4,
                             replication_factor=2)
        new_plan, _ = plan.rebalance(["w0", "w1", "w2"])
        for shard in range(4):
            old_survivors = [w for w in plan.workers_for(shard) if w != "w3"]
            for w in old_survivors:
                assert w in new_plan.workers_for(shard)

    def test_insufficient_workers_rejected(self):
        plan = PlacementPlan(worker_ids=["w0", "w1"], shard_number=2,
                             replication_factor=2)
        with pytest.raises(ClusterConfigError):
            plan.rebalance(["w0"])

    @given(
        st.integers(1, 8),
        st.integers(1, 12),
        st.integers(1, 3),
        st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_rebalance_invariants(self, n_before, shards, rf, n_after):
        """After any rebalance: every shard has rf distinct live holders."""
        rf = min(rf, n_before, n_after)
        before = [f"w{i}" for i in range(n_before)]
        after = [f"w{i}" for i in range(100, 100 + n_after)] + before[: max(0, n_before - 1)]
        plan = PlacementPlan(worker_ids=before, shard_number=shards, replication_factor=rf)
        new_plan, moves = plan.rebalance(after)
        for shard in range(shards):
            holders = new_plan.workers_for(shard)
            assert len(holders) == rf
            assert len(set(holders)) == rf
            assert all(h in after for h in holders)
        for move in moves:
            assert move.target in after
