"""Behavioural test of the §3.2 asyncio mechanism on the real client.

With latency injected into the transport (standing in for the network +
server time of a real deployment), concurrency 2 must overlap the awaited
requests and beat concurrency 1 — while the speedup stays below the Amdahl
bound implied by the measured conversion/request split.  This is the
mechanism check behind Figure 2's right panel, on real asyncio code rather
than the model.
"""

import numpy as np
import pytest

from repro.core import (
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    VectorParams,
)
from repro.core.aioclient import AsyncClient
from repro.core.cluster import Cluster
from repro.core.transport import InstrumentedTransport, LocalTransport
from repro.core.worker import Worker

DIM = 32


def latency_cluster(latency_s: float) -> Cluster:
    inner = LocalTransport()
    cluster = Cluster(InstrumentedTransport(inner, latency_s=latency_s))
    cluster.add_worker(Worker("w0"))
    cluster.create_collection(
        CollectionConfig(
            "c", VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(indexing_threshold=0),
        )
    )
    return cluster


def points(n):
    rng = np.random.default_rng(0)
    return [PointStruct(id=i, vector=rng.normal(size=DIM)) for i in range(n)]


@pytest.mark.slow
def test_concurrency_two_overlaps_requests():
    latency = 0.01  # 10 ms per RPC: await-dominated regime
    pts = points(320)

    cluster1 = latency_cluster(latency)
    c1 = AsyncClient(cluster1, "c")
    r1 = c1.upload(pts, batch_size=32, concurrency=1)
    c1.close()

    cluster2 = latency_cluster(latency)
    c2 = AsyncClient(cluster2, "c")
    r2 = c2.upload(pts, batch_size=32, concurrency=4)
    c2.close()

    assert cluster1.count("c") == cluster2.count("c") == 320
    # request time dominates conversion here, so overlap must win clearly
    assert r2.total_s < r1.total_s * 0.85
    # and never beyond the Amdahl bound from the measured decomposition
    bound = r1.timings.amdahl_max_speedup()
    assert r1.total_s / r2.total_s <= bound * 1.2  # 20% measurement slack


def test_await_time_is_recorded_per_batch():
    cluster = latency_cluster(0.002)
    client = AsyncClient(cluster, "c")
    report = client.upload(points(64), batch_size=16, concurrency=2)
    client.close()
    assert report.batches == 4
    assert report.mean_await_ms >= 2.0  # at least the injected latency
