"""Unit tests for the public value types."""

import math

import numpy as np
import pytest

from repro.core.types import (
    CollectionConfig,
    Distance,
    HnswConfig,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)


class TestDistance:
    def test_higher_is_better(self):
        assert Distance.COSINE.higher_is_better
        assert Distance.DOT.higher_is_better
        assert not Distance.EUCLID.higher_is_better

    def test_worst_score(self):
        assert Distance.COSINE.worst_score() == -math.inf
        assert Distance.EUCLID.worst_score() == math.inf

    def test_is_better_similarity(self):
        assert Distance.COSINE.is_better(0.9, 0.1)
        assert not Distance.COSINE.is_better(0.1, 0.9)

    def test_is_better_distance(self):
        assert Distance.EUCLID.is_better(0.1, 0.9)
        assert not Distance.EUCLID.is_better(0.9, 0.1)

    def test_is_better_strict(self):
        assert not Distance.COSINE.is_better(0.5, 0.5)
        assert not Distance.EUCLID.is_better(0.5, 0.5)


class TestVectorParams:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            VectorParams(size=0)
        with pytest.raises(ValueError):
            VectorParams(size=-3)

    def test_default_distance_is_cosine(self):
        assert VectorParams(size=4).distance is Distance.COSINE


class TestHnswConfig:
    def test_defaults_match_qdrant(self):
        cfg = HnswConfig()
        assert cfg.m == 16
        assert cfg.ef_construct == 100

    def test_rejects_tiny_m(self):
        with pytest.raises(ValueError):
            HnswConfig(m=1)

    def test_rejects_ef_below_m(self):
        with pytest.raises(ValueError):
            HnswConfig(m=16, ef_construct=8)


class TestCollectionConfig:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            CollectionConfig("", VectorParams(size=4))

    def test_rejects_bad_replication(self):
        with pytest.raises(ValueError):
            CollectionConfig("x", VectorParams(size=4), replication_factor=0)

    def test_rejects_bad_shard_number(self):
        with pytest.raises(ValueError):
            CollectionConfig("x", VectorParams(size=4), shard_number=0)

    def test_with_replaces_fields(self):
        cfg = CollectionConfig("x", VectorParams(size=4))
        cfg2 = cfg.with_(optimizer=OptimizerConfig(indexing_threshold=0))
        assert cfg2.optimizer.indexing_threshold == 0
        assert cfg.optimizer.indexing_threshold == 20_000  # original untouched
        assert cfg2.name == "x"


class TestPointStruct:
    def test_as_array_coerces_to_float32(self):
        p = PointStruct(id=1, vector=[1, 2, 3])
        arr = p.as_array()
        assert arr.dtype == np.float32
        assert arr.shape == (3,)

    def test_as_array_rejects_matrix(self):
        p = PointStruct(id=1, vector=np.ones((2, 2)))
        with pytest.raises(ValueError):
            p.as_array()


class TestSearchRequest:
    def test_as_array(self):
        req = SearchRequest(vector=[0.0, 1.0])
        assert req.as_array().shape == (2,)

    def test_rejects_2d_query(self):
        req = SearchRequest(vector=np.ones((2, 2)))
        with pytest.raises(ValueError):
            req.as_array()

    def test_default_limit(self):
        assert SearchRequest(vector=[1.0]).limit == 10
