"""KD-tree tests: exact mode must equal brute force (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index.flat import FlatIndex
from repro.core.index.kdtree import KdTreeIndex
from repro.core.storage import VectorArena
from repro.core.types import Distance

DIM = 6


def make(n=300, seed=0, distance=Distance.EUCLID, leaf_size=16):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, DIM)).astype(np.float32)
    if distance is Distance.COSINE:
        data /= np.linalg.norm(data, axis=1, keepdims=True)
    arena = VectorArena(DIM)
    arena.extend(data)
    index = KdTreeIndex(arena, distance, leaf_size=leaf_size)
    index.build(data, np.arange(n, dtype=np.int64))
    return arena, index, data


class TestBuild:
    def test_rejects_dot(self):
        with pytest.raises(ValueError):
            KdTreeIndex(VectorArena(DIM), Distance.DOT)

    def test_no_incremental_add(self):
        arena, index, _ = make()
        with pytest.raises(NotImplementedError):
            index.add(0, np.zeros(DIM, dtype=np.float32))
        assert not index.supports_incremental_add

    def test_depth_logarithmic(self):
        _, index, _ = make(n=1000)
        assert index.depth() <= 16

    def test_identical_points(self):
        arena = VectorArena(DIM)
        data = np.ones((100, DIM), dtype=np.float32)
        arena.extend(data)
        index = KdTreeIndex(arena, Distance.EUCLID)
        index.build(data, np.arange(100, dtype=np.int64))
        offsets, scores = index.search(np.ones(DIM, dtype=np.float32), 5)
        assert len(offsets) == 5
        assert np.allclose(scores, 0.0)


class TestExactness:
    @given(st.integers(5, 200), st.integers(1, 15), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_exact_equals_brute_force(self, n, k, seed):
        arena, index, data = make(n=n, seed=seed)
        flat = FlatIndex(arena, Distance.EUCLID)
        flat.build(data, np.arange(n, dtype=np.int64))
        q = np.random.default_rng(seed + 100).normal(size=DIM).astype(np.float32)
        kd_off, kd_scores = index.search(q, k, exact=True)
        fl_off, fl_scores = flat.search(q, k)
        assert np.allclose(np.sort(kd_scores), np.sort(fl_scores), atol=1e-3)

    def test_cosine_mode(self):
        arena, index, data = make(distance=Distance.COSINE)
        flat = FlatIndex(arena, Distance.COSINE)
        flat.build(data, np.arange(300, dtype=np.int64))
        q = np.random.default_rng(1).normal(size=DIM).astype(np.float32)
        kd = index.search(q, 10, exact=True)[0].tolist()
        fl = flat.search(q, 10)[0].tolist()
        assert set(kd) == set(fl)

    def test_approximate_mode_bounded_leaves(self):
        _, index, data = make(n=2000, leaf_size=8)
        index.stats.reset()
        offsets, _ = index.search(data[5], 10, exact=False, max_leaves=4)
        assert len(offsets) == 10
        assert index.stats.distance_computations <= 4 * 8 + 8

    def test_predicate(self):
        _, index, data = make()
        offsets, _ = index.search(data[0], 10, predicate=lambda o: o % 3 == 0)
        assert all(o % 3 == 0 for o in offsets)

    def test_k_zero(self):
        _, index, data = make()
        offsets, _ = index.search(data[0], 0)
        assert len(offsets) == 0
