"""Grouped search tests (collection + cluster), incl. the chunking use-case."""

import numpy as np
import pytest

from repro.core import (
    Collection,
    CollectionConfig,
    Distance,
    FieldMatch,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)
from repro.core.cluster import Cluster
from repro.embed.chunking import FixedSizeChunker, chunk_corpus_points
from repro.embed.model import HashingEmbedder
from repro.workloads.pes2o import Pes2oCorpus

DIM = 16


def config(name="g"):
    return CollectionConfig(
        name, VectorParams(size=DIM, distance=Distance.COSINE),
        optimizer=OptimizerConfig(indexing_threshold=0),
    )


@pytest.fixture
def grouped_collection():
    rng = np.random.default_rng(0)
    col = Collection(config())
    # 5 groups x 10 points each
    col.upsert([
        PointStruct(id=i, vector=rng.normal(size=DIM), payload={"doc": i // 10})
        for i in range(50)
    ])
    return col


class TestSearchGroups:
    def test_groups_distinct(self, grouped_collection):
        q = np.random.default_rng(1).normal(size=DIM)
        groups = grouped_collection.search_groups(
            SearchRequest(vector=q, limit=3), group_by="doc", group_size=2
        )
        assert len(groups) == 3
        keys = [k for k, _ in groups]
        assert len(set(keys)) == 3
        for key, hits in groups:
            assert 1 <= len(hits) <= 2
            assert all(h.payload["doc"] == key for h in hits)

    def test_groups_ordered_by_best_hit(self, grouped_collection):
        q = np.random.default_rng(2).normal(size=DIM)
        groups = grouped_collection.search_groups(
            SearchRequest(vector=q, limit=5), group_by="doc"
        )
        best = [hits[0].score for _, hits in groups]
        assert best == sorted(best, reverse=True)

    def test_missing_key_skipped(self):
        col = Collection(config())
        col.upsert([
            PointStruct(id=0, vector=np.ones(DIM), payload={"doc": 1}),
            PointStruct(id=1, vector=np.ones(DIM), payload={}),  # no 'doc'
        ])
        groups = col.search_groups(
            SearchRequest(vector=np.ones(DIM), limit=5), group_by="doc"
        )
        assert len(groups) == 1

    def test_group_with_filter(self, grouped_collection):
        q = np.random.default_rng(3).normal(size=DIM)
        groups = grouped_collection.search_groups(
            SearchRequest(vector=q, limit=5, filter=FieldMatch("doc", 2)),
            group_by="doc",
        )
        assert [k for k, _ in groups] == [2]

    def test_cluster_groups_match_collection(self, grouped_collection):
        pts = []
        for seg in grouped_collection.segments:
            for rec in seg.iter_points(with_vector=True):
                pts.append(PointStruct(id=rec.id, vector=rec.vector, payload=rec.payload))
        cluster = Cluster.with_workers(3)
        cluster.create_collection(config("dist"))
        cluster.upsert("dist", pts)
        q = np.random.default_rng(4).normal(size=DIM)
        local = grouped_collection.search_groups(
            SearchRequest(vector=q, limit=4), group_by="doc", group_size=2
        )
        dist = cluster.search_groups(
            "dist", SearchRequest(vector=q, limit=4), group_by="doc", group_size=2
        )
        assert [k for k, _ in local] == [k for k, _ in dist]
        for (_, lh), (_, dh) in zip(local, dist):
            assert [h.id for h in lh] == [h.id for h in dh]


class TestChunkedRetrieval:
    def test_chunk_hits_collapse_to_papers(self):
        """§3.1 future work, end-to-end: chunked corpus + grouped search
        returns paper-level results from chunk-level points."""
        embedder = HashingEmbedder(dim=128)
        corpus = Pes2oCorpus(6, seed=5)
        col = Collection(
            CollectionConfig(
                "chunks", VectorParams(size=128, distance=Distance.COSINE),
                optimizer=OptimizerConfig(indexing_threshold=0),
            )
        )
        points = list(
            chunk_corpus_points(corpus, embedder, FixedSizeChunker(size=3_000))
        )
        col.upsert(points)
        assert len(col) == len(points) > 6

        # query with a chunk of paper 2's own text
        target = corpus.paper(2).text[:2_500]
        q = embedder.encode(target)
        groups = col.search_groups(
            SearchRequest(vector=q, limit=3), group_by="paper_id", group_size=2
        )
        assert groups[0][0] == 2  # paper 2 wins
        titles = {hits[0].payload["title"] for _, hits in groups}
        assert corpus.paper(2).title in titles
