"""End-to-end observability: span trees, telemetry histograms, reset races.

The acceptance shape for the obs subsystem: a single ``Cluster.search``
under an enabled tracer yields the full client→cluster→worker→segment
span tree, exportable as valid Chrome trace JSON, and the cluster's
telemetry carries p50/p95/p99 latency histograms that reset without
racing concurrent fan-outs.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.core import (
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)
from repro.core.client import SyncClient
from repro.core.cluster import Cluster
from repro.core.mpclient import ParallelClientPool
from repro.core.telemetry import collect
from repro.core.types import WalConfig
from repro.obs.export import chrome_trace
from repro.obs.trace import Tracer, set_tracer

DIM = 16


@pytest.fixture
def tracer():
    t = Tracer(enabled=True)
    previous = set_tracer(t)
    yield t
    set_tracer(previous)


def make_cluster(n=4, wal_dir=None):
    cluster = Cluster.with_workers(n)
    cluster.create_collection(
        CollectionConfig(
            "c",
            VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(indexing_threshold=0),
            wal=WalConfig(enabled=True, path=wal_dir) if wal_dir else WalConfig(),
        )
    )
    return cluster


def points(n, seed=0):
    rng = np.random.default_rng(seed)
    return [PointStruct(id=i, vector=rng.normal(size=DIM)) for i in range(n)]


def spans_named(tracer, name):
    return [r for r in tracer.spans() if r.name == name]


class TestSearchSpanTree:
    def test_single_search_produces_full_tree(self, tracer):
        cluster = make_cluster()
        cluster.upsert("c", points(64))
        tracer.reset()

        cluster.search("c", SearchRequest(vector=points(1)[0].as_array(), limit=5))

        [root] = spans_named(tracer, "cluster.search")
        assert root.parent_id is None
        assert root.attr("collection") == "c"
        assert root.attr("shards") is not None

        [fanout] = spans_named(tracer, "cluster.fanout")
        assert fanout.parent_id == root.span_id

        rpcs = spans_named(tracer, "rpc.search")
        assert len(rpcs) == 4  # one per worker
        assert all(r.parent_id == fanout.span_id for r in rpcs)
        assert {r.attr("worker") for r in rpcs} == {f"worker-{i}" for i in range(4)}

        workers = spans_named(tracer, "worker.search")
        assert len(workers) == 4
        rpc_ids = {r.span_id for r in rpcs}
        assert all(w.parent_id in rpc_ids for w in workers)

        segments = spans_named(tracer, "segment.search")
        assert segments
        worker_ids = {w.span_id for w in workers}
        assert all(s.parent_id in worker_ids for s in segments)

        # One query, one trace: every span shares the root's trace id.
        assert {r.trace_id for r in tracer.spans()} == {root.trace_id}

    def test_tree_exports_to_valid_chrome_trace(self, tracer):
        cluster = make_cluster()
        cluster.upsert("c", points(32))
        tracer.reset()
        cluster.search("c", SearchRequest(vector=points(1)[0].as_array(), limit=5))

        doc = chrome_trace(tracer.spans())
        json.dumps(doc)  # serializable
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == tracer.span_count
        assert {e["name"] for e in slices} >= {
            "cluster.search", "cluster.fanout", "rpc.search",
            "worker.search", "segment.search",
        }
        # All spans of the query share one process row in the timeline.
        assert len({e["pid"] for e in slices}) == 1

    def test_search_batch_tree(self, tracer):
        cluster = make_cluster()
        cluster.upsert("c", points(32))
        tracer.reset()
        reqs = [SearchRequest(vector=p.as_array(), limit=3) for p in points(4, seed=2)]
        cluster.search_batch("c", reqs)
        [root] = spans_named(tracer, "cluster.search_batch")
        assert root.attr("requests") == 4
        assert spans_named(tracer, "rpc.search_batch")


class TestWriteSpanTree:
    def test_upsert_tree_reaches_wal(self, tracer, tmp_path):
        cluster = make_cluster(wal_dir=str(tmp_path))
        tracer.reset()
        cluster.upsert("c", points(32))

        [root] = spans_named(tracer, "cluster.upsert")
        [fanout] = spans_named(tracer, "cluster.fanout")
        assert fanout.parent_id == root.span_id

        shard_writes = spans_named(tracer, "cluster.shard_write")
        assert shard_writes
        assert all(s.parent_id == fanout.span_id for s in shard_writes)

        rpcs = spans_named(tracer, "rpc.upsert")
        shard_ids = {s.span_id for s in shard_writes}
        assert rpcs and all(r.parent_id in shard_ids for r in rpcs)

        workers = spans_named(tracer, "worker.upsert")
        assert workers

        appends = spans_named(tracer, "wal.append")
        worker_ids = {w.span_id for w in workers}
        assert appends and all(a.parent_id in worker_ids for a in appends)
        assert {r.trace_id for r in tracer.spans()} == {root.trace_id}


class TestClientPropagation:
    def test_sync_client_upload_is_one_trace(self, tracer):
        cluster = make_cluster()
        client = SyncClient(cluster, "c")
        tracer.reset()
        client.upload(points(40), batch_size=16)
        [root] = spans_named(tracer, "client.upload")
        upserts = spans_named(tracer, "cluster.upsert")
        assert len(upserts) == 3  # ceil(40/16)
        assert all(u.parent_id == root.span_id for u in upserts)
        assert spans_named(tracer, "client.convert")
        assert {r.trace_id for r in tracer.spans()} == {root.trace_id}

    def test_pipelined_upload_crosses_request_thread(self, tracer):
        """upload_pipelined runs requests in a worker thread; the upsert
        spans must still parent under the client.upload root."""
        cluster = make_cluster()
        client = SyncClient(cluster, "c")
        tracer.reset()
        client.upload_pipelined(points(48), batch_size=16)
        [root] = spans_named(tracer, "client.upload")
        assert root.attr("pipelined") is True
        upserts = spans_named(tracer, "cluster.upsert")
        assert len(upserts) == 3
        assert all(u.parent_id == root.span_id for u in upserts)
        assert all(u.trace_id == root.trace_id for u in upserts)

    def test_parallel_pool_upload_is_one_trace(self, tracer):
        cluster = make_cluster()
        pool = ParallelClientPool(cluster, "c")
        tracer.reset()
        pool.upload(points(64), batch_size=16)
        [root] = spans_named(tracer, "client.pool_upload")
        clients = spans_named(tracer, "client.pool_client")
        assert clients
        assert all(c.parent_id == root.span_id for c in clients)
        assert {r.trace_id for r in tracer.spans()} == {root.trace_id}


class TestTelemetryHistograms:
    def test_query_histograms_in_snapshot(self):
        cluster = make_cluster()
        cluster.upsert("c", points(64))
        before = collect(cluster)
        q = points(1, seed=3)[0].as_array()
        for _ in range(20):
            cluster.search("c", SearchRequest(vector=q, limit=5))
        after = collect(cluster)

        delta = after.diff(before)
        query = delta.histograms["cluster.query_s"]
        assert query.count == 20
        assert 0.0 < query.p50 <= query.p95 <= query.p99
        rpc = delta.histograms["cluster.rpc_s"]
        assert rpc.count == 80  # 4 workers x 20 queries

        summary = after.latency_summary()
        assert summary["cluster.query_s"]["count"] >= 20
        for key in ("p50", "p95", "p99", "mean"):
            assert key in summary["cluster.query_s"]

    def test_search_batch_amortized_histogram(self):
        cluster = make_cluster()
        cluster.upsert("c", points(64))
        before = collect(cluster)
        reqs = [SearchRequest(vector=p.as_array(), limit=3) for p in points(8, seed=5)]
        cluster.search_batch("c", reqs)
        delta = collect(cluster).diff(before)
        batch = delta.histograms["cluster.query_batch_s"]
        assert batch.count == 1
        # One amortized per-query sample (wall / batch size) keeps
        # cluster.query_s meaningful under batch workloads.
        per_query = delta.histograms["cluster.query_s"]
        assert per_query.count == 1
        assert per_query.sum == pytest.approx(batch.sum / 8, rel=0.25)

    def test_upsert_histogram(self):
        cluster = make_cluster()
        before = collect(cluster)
        cluster.upsert("c", points(32))
        delta = collect(cluster).diff(before)
        assert delta.histograms["cluster.upsert_s"].count == 1

    def test_span_counters_in_snapshot(self, tracer):
        cluster = make_cluster()
        cluster.upsert("c", points(16))
        snap = collect(cluster)
        assert snap.spans_recorded == tracer.span_count
        assert snap.spans_dropped == 0


class TestResetTelemetry:
    def test_reset_zeroes_everything(self):
        cluster = make_cluster()
        cluster.upsert("c", points(64))
        cluster.search(
            "c", SearchRequest(vector=points(1)[0].as_array(), limit=5)
        )
        cluster.reset_telemetry()
        snap = collect(cluster)
        assert snap.fanout.fanouts == 0
        assert snap.total_vectors_inserted == 0
        assert all(h.count == 0 for h in snap.histograms.values())

    def test_reset_can_keep_histograms(self):
        cluster = make_cluster()
        cluster.upsert("c", points(32))
        cluster.reset_telemetry(histograms=False)
        snap = collect(cluster)
        assert snap.fanout.fanouts == 0
        assert snap.histograms["cluster.upsert_s"].count == 1

    def test_reset_races_concurrent_fanout_safely(self):
        """The satellite fix: reset while queries are in flight must never
        corrupt counters — every final value is consistent, nothing raises."""
        cluster = make_cluster()
        cluster.upsert("c", points(64))
        q = points(1, seed=7)[0].as_array()
        errors = []
        stop = threading.Event()

        def query_loop():
            try:
                while not stop.is_set():
                    cluster.search("c", SearchRequest(vector=q, limit=5))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=query_loop) for _ in range(4)]
        for t in threads:
            t.start()
        for _ in range(50):
            cluster.reset_telemetry()
            snap = collect(cluster)
            assert snap.fanout.fanouts >= 0
            assert all(h.count >= 0 for h in snap.histograms.values())
            hist = snap.histograms["cluster.query_s"]
            assert sum(hist.counts) == hist.count
        stop.set()
        for t in threads:
            t.join()
        assert not errors
