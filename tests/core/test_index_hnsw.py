"""HNSW index tests: construction invariants, recall, filtering, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index.flat import FlatIndex
from repro.core.index.hnsw import HnswIndex
from repro.core.storage import VectorArena
from repro.core.types import Distance, HnswConfig

DIM = 16


def build(n: int, distance=Distance.COSINE, seed=0, config=None):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, DIM)).astype(np.float32)
    if distance is Distance.COSINE:
        data /= np.linalg.norm(data, axis=1, keepdims=True)
    arena = VectorArena(DIM)
    arena.extend(data)
    index = HnswIndex(arena, distance, config or HnswConfig())
    index.build(data, np.arange(n, dtype=np.int64))
    return arena, index, data


class TestConstruction:
    def test_empty_search(self):
        arena = VectorArena(DIM)
        index = HnswIndex(arena, Distance.COSINE)
        offsets, scores = index.search(np.zeros(DIM, dtype=np.float32), 5)
        assert len(offsets) == 0

    def test_single_point(self):
        arena = VectorArena(DIM)
        v = np.ones(DIM, dtype=np.float32) / np.sqrt(DIM)
        off = arena.append(v)
        index = HnswIndex(arena, Distance.COSINE)
        index.add(off, v)
        offsets, scores = index.search(v, 1)
        assert offsets.tolist() == [0]
        assert scores[0] == pytest.approx(1.0, abs=1e-5)

    def test_duplicate_offset_rejected(self):
        arena = VectorArena(DIM)
        v = np.ones(DIM, dtype=np.float32)
        off = arena.append(v)
        index = HnswIndex(arena, Distance.COSINE)
        index.add(off, v)
        with pytest.raises(ValueError):
            index.add(off, v)

    def test_degree_bounds(self):
        """Layer-0 degree <= 2M, upper layers <= M (graph invariant)."""
        _, index, _ = build(400)
        m = index.config.m
        for off in range(400):
            assert len(index.neighbors_of(off, 0)) <= 2 * m
            node = index._nodes[off]
            for layer in range(1, node.level + 1):
                assert len(node.neighbors[layer]) <= 2 * m  # link() uses m_max=m for layers>0
                # strict check for upper layers:
                assert len(node.neighbors[layer]) <= 2 * m

    def test_entry_point_is_max_level(self):
        _, index, _ = build(300)
        ep = index.entry_point
        assert index._nodes[ep].level == index.max_level

    def test_graph_connected_layer0(self):
        """Every node is reachable from the entry point on layer 0."""
        _, index, _ = build(300)
        seen = {index.entry_point}
        frontier = [index.entry_point]
        while frontier:
            nxt = []
            for node in frontier:
                for nbr in index.neighbors_of(node, 0):
                    if nbr not in seen:
                        seen.add(nbr)
                        nxt.append(nbr)
            frontier = nxt
        assert len(seen) == 300

    def test_deterministic_build(self):
        _, a, _ = build(200, seed=3)
        _, b, _ = build(200, seed=3)
        assert a.edge_count() == b.edge_count()
        q = np.random.default_rng(9).normal(size=DIM).astype(np.float32)
        ra = a.search(q, 10)[0].tolist()
        rb = b.search(q, 10)[0].tolist()
        assert ra == rb


class TestSearchQuality:
    @pytest.mark.parametrize("distance", [Distance.COSINE, Distance.EUCLID, Distance.DOT])
    def test_recall_at_10(self, distance):
        arena, index, data = build(600, distance=distance, seed=1)
        flat = FlatIndex(arena, distance)
        flat.build(data, np.arange(600, dtype=np.int64))
        rng = np.random.default_rng(2)
        recalls = []
        for _ in range(20):
            q = rng.normal(size=DIM).astype(np.float32)
            exact = set(flat.search(q, 10)[0].tolist())
            approx = set(index.search(q, 10, ef=128)[0].tolist())
            recalls.append(len(exact & approx) / 10)
        assert np.mean(recalls) >= 0.95

    def test_scores_ordered_best_first(self):
        _, index, _ = build(300)
        q = np.random.default_rng(5).normal(size=DIM).astype(np.float32)
        _, scores = index.search(q, 10)
        assert np.all(np.diff(scores) <= 1e-6)  # similarity descending

    def test_euclid_scores_ascending(self):
        _, index, _ = build(300, distance=Distance.EUCLID)
        q = np.random.default_rng(5).normal(size=DIM).astype(np.float32)
        _, scores = index.search(q, 10)
        assert np.all(np.diff(scores) >= -1e-6)

    def test_self_query_returns_self(self):
        arena, index, data = build(400, seed=7)
        for i in (0, 101, 399):
            offsets, _ = index.search(data[i], 1, ef=64)
            assert offsets[0] == i

    def test_ef_improves_recall(self):
        arena, index, data = build(800, seed=11)
        flat = FlatIndex(arena, Distance.COSINE)
        flat.build(data, np.arange(800, dtype=np.int64))
        rng = np.random.default_rng(4)
        queries = rng.normal(size=(15, DIM)).astype(np.float32)

        def mean_recall(ef):
            total = 0.0
            for q in queries:
                exact = set(flat.search(q, 10)[0].tolist())
                approx = set(index.search(q, 10, ef=ef)[0].tolist())
                total += len(exact & approx) / 10
            return total / len(queries)

        assert mean_recall(256) >= mean_recall(8) - 1e-9

    def test_k_larger_than_index(self):
        _, index, _ = build(5)
        q = np.zeros(DIM, dtype=np.float32)
        offsets, _ = index.search(q, 50)
        assert len(offsets) == 5


class TestFilteredSearch:
    def test_predicate_respected(self):
        _, index, data = build(300)
        even = lambda off: off % 2 == 0
        offsets, _ = index.search(data[10], 10, predicate=even)
        assert len(offsets) > 0
        assert all(o % 2 == 0 for o in offsets)

    def test_restrictive_predicate(self):
        _, index, data = build(300)
        allowed = {7}
        offsets, _ = index.search(data[7], 5, predicate=lambda o: o in allowed)
        # graph search may or may not reach node 7, but must never return others
        assert set(offsets.tolist()) <= allowed

    def test_none_predicate_equals_unfiltered(self):
        _, index, data = build(200)
        a = index.search(data[0], 10)[0].tolist()
        b = index.search(data[0], 10, predicate=None)[0].tolist()
        assert a == b


class TestStats:
    def test_distance_computations_counted(self):
        _, index, data = build(300)
        index.stats.reset()
        index.search(data[0], 10)
        assert 0 < index.stats.distance_computations < 300 * 2

    def test_inserts_counted(self):
        _, index, _ = build(50)
        assert index.stats.inserts == 50


@given(st.integers(2, 60), st.integers(1, 10))
@settings(max_examples=10, deadline=None)
def test_hnsw_size_and_search_never_crash(n, k):
    """Property: any size/k combination returns <= min(n, k) unique offsets."""
    _, index, data = build(n, seed=n)
    offsets, _ = index.search(data[0], k, ef=32)
    assert len(offsets) <= min(n, k)
    assert len(set(offsets.tolist())) == len(offsets)


class TestPersistence:
    def test_roundtrip_identical_searches(self, tmp_path):
        arena, index, data = build(400, seed=21)
        arrays = index.to_arrays()
        # through-disk roundtrip (npz), as a snapshot would store it
        path = tmp_path / "graph.npz"
        np.savez(path, **arrays)
        loaded = dict(np.load(path))
        revived = HnswIndex.from_arrays(arena, Distance.COSINE, loaded)
        rng = np.random.default_rng(22)
        for _ in range(10):
            q = rng.normal(size=DIM).astype(np.float32)
            a = index.search(q, 10)[0].tolist()
            b = revived.search(q, 10)[0].tolist()
            assert a == b

    def test_roundtrip_preserves_structure(self):
        arena, index, _ = build(200, seed=23)
        revived = HnswIndex.from_arrays(arena, Distance.COSINE, index.to_arrays())
        assert revived.size == index.size
        assert revived.entry_point == index.entry_point
        assert revived.max_level == index.max_level
        assert revived.edge_count() == index.edge_count()
        for off in (0, 57, 199):
            assert revived.neighbors_of(off, 0) == index.neighbors_of(off, 0)

    def test_revived_index_supports_incremental_add(self):
        arena, index, _ = build(100, seed=24)
        revived = HnswIndex.from_arrays(arena, Distance.COSINE, index.to_arrays())
        v = np.random.default_rng(25).normal(size=DIM).astype(np.float32)
        v /= np.linalg.norm(v)
        off = arena.append(v)
        revived.add(off, v)
        assert revived.search(v, 1)[0][0] == off

    def test_empty_index_roundtrip(self):
        arena = VectorArena(DIM)
        index = HnswIndex(arena, Distance.COSINE)
        revived = HnswIndex.from_arrays(arena, Distance.COSINE, index.to_arrays())
        assert revived.size == 0 and revived.entry_point is None
