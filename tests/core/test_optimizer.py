"""SegmentOptimizer pass tests."""

import numpy as np

from repro.core.optimizer import SegmentOptimizer
from repro.core.segment import Segment
from repro.core.types import (
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    VectorParams,
)

DIM = 8


def config(**opt_kwargs):
    return CollectionConfig(
        "opt", VectorParams(size=DIM, distance=Distance.EUCLID),
        optimizer=OptimizerConfig(**opt_kwargs),
    )


def seg_with(cfg, n, start=0):
    seg = Segment(cfg)
    rng = np.random.default_rng(start)
    seg.upsert_batch(
        [PointStruct(id=start + i, vector=rng.normal(size=DIM)) for i in range(n)]
    )
    return seg


class TestIndexingPass:
    def test_indexes_above_threshold(self):
        cfg = config(indexing_threshold=50)
        optimizer = SegmentOptimizer(cfg)
        segments = [seg_with(cfg, 80)]
        segments, report = optimizer.run(segments)
        assert report.segments_indexed == 1
        assert report.vectors_indexed == 80
        assert report.index_builds == [(segments[0].segment_id, 80)]
        assert segments[0].is_indexed and segments[0].is_sealed

    def test_below_threshold_untouched(self):
        cfg = config(indexing_threshold=50)
        optimizer = SegmentOptimizer(cfg)
        segments, report = optimizer.run([seg_with(cfg, 20)])
        assert report.segments_indexed == 0
        assert not segments[0].is_indexed

    def test_zero_threshold_disables(self):
        cfg = config(indexing_threshold=0)
        optimizer = SegmentOptimizer(cfg)
        segments, report = optimizer.run([seg_with(cfg, 500)])
        assert report.segments_indexed == 0
        assert not segments[0].is_indexed

    def test_already_indexed_skipped(self):
        cfg = config(indexing_threshold=10)
        optimizer = SegmentOptimizer(cfg)
        segments, _ = optimizer.run([seg_with(cfg, 20)])
        segments, report2 = optimizer.run(segments)
        assert report2.segments_indexed == 0


class TestVacuumPass:
    def test_vacuum_triggered_by_ratio(self):
        cfg = config(indexing_threshold=0, vacuum_min_deleted_ratio=0.2)
        optimizer = SegmentOptimizer(cfg)
        seg = seg_with(cfg, 20)
        for i in range(10):
            seg.delete(i)
        segments, report = optimizer.run([seg])
        assert report.segments_vacuumed == 1
        assert segments[0].deleted_ratio == 0.0
        assert len(segments[0]) == 10

    def test_no_vacuum_below_ratio(self):
        cfg = config(indexing_threshold=0, vacuum_min_deleted_ratio=0.5)
        optimizer = SegmentOptimizer(cfg)
        seg = seg_with(cfg, 20)
        seg.delete(0)
        segments, report = optimizer.run([seg])
        assert report.segments_vacuumed == 0
        assert segments[0] is seg

    def test_fully_deleted_segment_dropped(self):
        cfg = config(indexing_threshold=0, vacuum_min_deleted_ratio=0.2)
        optimizer = SegmentOptimizer(cfg)
        seg = seg_with(cfg, 5)
        for i in range(5):
            seg.delete(i)
        segments, report = optimizer.run([seg])
        assert report.segments_vacuumed == 1
        assert segments == []


class TestMergePass:
    def test_merges_small_segments(self):
        cfg = config(indexing_threshold=0, max_segments=2, merge_threshold=100)
        optimizer = SegmentOptimizer(cfg)
        segments = [seg_with(cfg, 5, start=i * 10) for i in range(4)]
        merged, report = optimizer.run(segments)
        assert report.segments_merged == 4
        assert len(merged) == 1
        assert len(merged[0]) == 20

    def test_no_merge_under_max_segments(self):
        cfg = config(indexing_threshold=0, max_segments=8, merge_threshold=100)
        optimizer = SegmentOptimizer(cfg)
        segments = [seg_with(cfg, 5, start=i * 10) for i in range(3)]
        merged, report = optimizer.run(segments)
        assert report.segments_merged == 0
        assert len(merged) == 3

    def test_big_segments_not_merged(self):
        cfg = config(indexing_threshold=0, max_segments=1, merge_threshold=3)
        optimizer = SegmentOptimizer(cfg)
        segments = [seg_with(cfg, 10, start=i * 100) for i in range(3)]
        merged, report = optimizer.run(segments)
        assert report.segments_merged == 0  # all above merge_threshold


class TestReport:
    def test_did_work_flag(self):
        cfg = config(indexing_threshold=10)
        optimizer = SegmentOptimizer(cfg)
        _, report = optimizer.run([seg_with(cfg, 20)])
        assert report.did_work
        _, report2 = optimizer.run([])
        assert not report2.did_work
