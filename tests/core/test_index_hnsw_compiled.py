"""Compiled (CSR) HNSW equivalence tests.

Compiling is a pure representation change: the sealed CSR traversal must
return bit-identical ``(offsets, scores)`` to the appendable dict form for
every query, metric, predicate and ef — that equivalence is what lets
``Segment.seal`` compile unconditionally.
"""

import numpy as np
import pytest

from repro.core.index.hnsw import HnswIndex
from repro.core.storage import VectorArena
from repro.core.types import Distance, HnswConfig

DIM = 16
N = 300


def build_index(distance: Distance, n: int = N, seed: int = 3) -> HnswIndex:
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, DIM)).astype(np.float32)
    if distance is Distance.COSINE:
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
    arena = VectorArena(DIM)
    arena.extend(vectors)
    index = HnswIndex(arena, distance, HnswConfig(m=8, ef_construct=32))
    offsets = np.arange(n, dtype=np.int64)
    index.build(arena.take(offsets), offsets)
    return index


def queries(n: int = 20, seed: int = 9) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, DIM)).astype(np.float32)


def assert_identical(a, b):
    """Exact equality of an (offsets, scores) pair."""
    np.testing.assert_array_equal(a[0], b[0])
    np.testing.assert_array_equal(a[1], b[1])


@pytest.mark.parametrize("distance", [Distance.COSINE, Distance.DOT, Distance.EUCLID])
class TestCompiledEquivalence:
    def test_compile_matches_dict_form(self, distance):
        index = build_index(distance)
        assert not index.is_compiled
        expected = [index.search(q, 10) for q in queries()]
        index.compile()
        assert index.is_compiled
        for q, exp in zip(queries(), expected):
            assert_identical(index.search(q, 10), exp)

    def test_decompile_round_trip(self, distance):
        index = build_index(distance)
        expected = [index.search(q, 5) for q in queries()]
        index.compile()
        index.decompile()
        assert not index.is_compiled
        for q, exp in zip(queries(), expected):
            assert_identical(index.search(q, 5), exp)

    def test_from_arrays_round_trip(self, distance):
        index = build_index(distance)
        restored = HnswIndex.from_arrays(
            index._arena, distance, index.to_arrays(), index.config
        )
        restored.compile()
        for q in queries():
            assert_identical(restored.search(q, 10), index.search(q, 10))

    def test_predicate_and_ef_equivalence(self, distance):
        index = build_index(distance)
        predicate = lambda off: off % 3 == 0  # noqa: E731
        expected = [index.search(q, 8, predicate=predicate, ef=200) for q in queries()]
        index.compile()
        for q, exp in zip(queries(), expected):
            got = index.search(q, 8, predicate=predicate, ef=200)
            assert_identical(got, exp)
            assert all(off % 3 == 0 for off in got[0])

    def test_batch_matches_single(self, distance):
        index = build_index(distance)
        qs = queries()
        batch = index.search_batch(qs, 10)
        assert index.is_compiled  # batch entry compiles on first use
        for q, pair in zip(qs, batch):
            assert_identical(pair, index.search(q, 10))


class TestCompiledLifecycle:
    def test_add_invalidates_compiled_form(self):
        # EUCLID: the nearest neighbour of a stored vector is itself.
        index = build_index(Distance.EUCLID)
        index.compile()
        vec = np.random.default_rng(1).normal(size=DIM).astype(np.float32)
        off = index._arena.append(vec)
        index.add(off, vec)
        assert not index.is_compiled
        offsets, _ = index.search(vec, 1, ef=64)
        assert offsets[0] == off

    def test_recompile_after_add_matches_dict_form(self):
        index = build_index(Distance.DOT)
        index.compile()
        rng = np.random.default_rng(2)
        for _ in range(10):
            vec = rng.normal(size=DIM).astype(np.float32)
            off = index._arena.append(vec)
            index.add(off, vec)
        expected = [index.search(q, 10) for q in queries()]
        index.compile()
        for q, exp in zip(queries(), expected):
            assert_identical(index.search(q, 10), exp)

    def test_empty_index_search(self):
        arena = VectorArena(DIM)
        index = HnswIndex(arena, Distance.COSINE)
        index.compile()  # must not blow up on an empty graph
        offsets, scores = index.search(np.zeros(DIM, dtype=np.float32), 5)
        assert offsets.size == 0 and scores.size == 0
