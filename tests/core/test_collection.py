"""Collection tests: multi-segment behaviour, optimizer wiring, WAL, search."""

import numpy as np
import pytest

from repro.core import (
    Collection,
    CollectionConfig,
    CollectionStatus,
    Distance,
    FieldMatch,
    Filter,
    OptimizerConfig,
    PointStruct,
    SearchParams,
    SearchRequest,
    VectorParams,
    WalConfig,
)
from repro.core.errors import PointNotFoundError

DIM = 10


def make(threshold=0, max_segment_size=None, **kwargs) -> Collection:
    return Collection(
        CollectionConfig(
            "col",
            VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(
                indexing_threshold=threshold, max_segment_size=max_segment_size
            ),
            **kwargs,
        )
    )


def points(n, start=0, seed=0):
    rng = np.random.default_rng(seed + start)
    return [
        PointStruct(id=start + i, vector=rng.normal(size=DIM), payload={"g": (start + i) % 3})
        for i in range(n)
    ]


class TestWrites:
    def test_upsert_single_point_object(self):
        col = make()
        col.upsert(PointStruct(id=1, vector=np.ones(DIM)))
        assert len(col) == 1

    def test_upsert_batch(self):
        col = make()
        col.upsert(points(50))
        assert len(col) == 50

    def test_reupsert_across_segments(self):
        """An id living in a sealed segment must be tombstoned on re-upsert."""
        col = make(max_segment_size=10)
        col.upsert(points(10))          # fills and seals segment 1
        col.upsert(points(10, start=10))
        assert len(col.segments) >= 2
        col.upsert([PointStruct(id=3, vector=np.full(DIM, 0.5), payload={"new": 1})])
        assert len(col) == 20
        assert col.retrieve(3).payload == {"new": 1}

    def test_delete_across_segments(self):
        col = make(max_segment_size=10)
        col.upsert(points(25))
        col.delete([0, 15, 24])
        assert len(col) == 22
        with pytest.raises(PointNotFoundError):
            col.retrieve(15)

    def test_delete_missing_raises(self):
        col = make()
        col.upsert(points(5))
        with pytest.raises(PointNotFoundError):
            col.delete(99)

    def test_set_payload(self):
        col = make()
        col.upsert(points(5))
        col.set_payload(2, {"x": 1})
        assert col.retrieve(2).payload == {"x": 1}


class TestOptimizerWiring:
    def test_threshold_triggers_index(self):
        col = make(threshold=100)
        col.upsert(points(150))
        assert col.indexed_vectors_count == 150
        assert col.info().status is CollectionStatus.GREEN

    def test_bulk_mode_defers(self):
        col = make(threshold=0)
        col.upsert(points(150))
        assert col.indexed_vectors_count == 0
        report = col.build_index("hnsw")
        assert report.vectors_indexed == 150
        assert col.indexed_vectors_count == 150

    def test_yellow_status_when_pending(self):
        col = make(threshold=100, max_segment_size=10_000)
        # insert below threshold in two calls so optimizer never fires
        col.upsert(points(50))
        assert col.info().status is CollectionStatus.GREEN  # below threshold is fine
        # build up beyond threshold with optimizer disabled via sealed segments
        # (status turns YELLOW only when a big unindexed appendable exists)

    def test_new_segment_after_seal(self):
        col = make(max_segment_size=20)
        col.upsert(points(45))
        assert len(col.segments) >= 2
        assert len(col) == 45

    def test_explicit_optimize(self):
        col = make(threshold=10)
        col.upsert(points(30))
        report = col.optimize()
        assert col.indexed_vectors_count == 30 or report is not None


class TestSearch:
    def test_search_across_segments(self):
        col = make(max_segment_size=25)
        col.upsert(points(80))
        target = col.retrieve(42, with_vector=True).vector
        hits = col.search(SearchRequest(vector=target, limit=3))
        assert hits[0].id == 42

    def test_search_merges_best_score_per_id(self):
        col = make()
        col.upsert(points(30))
        q = np.random.default_rng(2).normal(size=DIM)
        hits = col.search(SearchRequest(vector=q, limit=10))
        ids = [h.id for h in hits]
        assert len(ids) == len(set(ids))
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_filtered_search(self):
        col = make()
        col.upsert(points(60))
        q = np.random.default_rng(3).normal(size=DIM)
        hits = col.search(
            SearchRequest(vector=q, limit=10, filter=FieldMatch("g", 1), with_payload=True)
        )
        assert hits and all(h.payload["g"] == 1 for h in hits)

    def test_exact_param(self):
        col = make(threshold=50)
        col.upsert(points(100))
        q = np.random.default_rng(4).normal(size=DIM)
        approx = col.search(SearchRequest(vector=q, limit=5))
        exact = col.search(SearchRequest(vector=q, limit=5, params=SearchParams(exact=True)))
        assert len(approx) == len(exact) == 5

    def test_search_batch_fast_path_matches_slow(self):
        col = make()
        col.upsert(points(100))
        qs = np.random.default_rng(5).normal(size=(6, DIM)).astype(np.float32)
        requests = [SearchRequest(vector=q, limit=5) for q in qs]
        fast = col.search_batch(requests)
        slow = [col.search(r) for r in requests]
        for f, s in zip(fast, slow):
            assert [h.id for h in f] == [h.id for h in s]

    def test_search_batch_heterogeneous_falls_back(self):
        col = make()
        col.upsert(points(50))
        qs = np.random.default_rng(6).normal(size=(2, DIM)).astype(np.float32)
        requests = [
            SearchRequest(vector=qs[0], limit=5, filter=FieldMatch("g", 0)),
            SearchRequest(vector=qs[1], limit=3),
        ]
        out = col.search_batch(requests)
        assert len(out) == 2 and len(out[1]) == 3


class TestScroll:
    def test_scroll_across_segments(self):
        col = make(max_segment_size=10)
        col.upsert(points(35))
        page, nxt = col.scroll(limit=20)
        assert [r.id for r in page] == list(range(20))
        assert nxt == 20
        rest, last = col.scroll(offset_id=nxt, limit=20)
        assert [r.id for r in rest] == list(range(20, 35))
        assert last is None


class TestWal:
    def test_wal_replay_restores_state(self, tmp_path):
        wal_cfg = WalConfig(enabled=True, path=str(tmp_path / "col.wal"))
        cfg = CollectionConfig(
            "dur", VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(indexing_threshold=0), wal=wal_cfg,
        )
        col = Collection(cfg)
        col.upsert(points(20))
        col.delete([5])
        col.set_payload(6, {"replayed": True})
        col.close()

        revived = Collection(cfg)
        assert len(revived) == 19
        assert not revived.contains(5)
        assert revived.retrieve(6).payload == {"replayed": True}
        target = revived.retrieve(7, with_vector=True).vector
        assert revived.search(SearchRequest(vector=target, limit=1))[0].id == 7
        revived.close()

    def test_checkpoint_truncates(self, tmp_path):
        wal_cfg = WalConfig(enabled=True, path=str(tmp_path / "c.wal"))
        cfg = CollectionConfig(
            "dur2", VectorParams(size=DIM), optimizer=OptimizerConfig(indexing_threshold=0),
            wal=wal_cfg,
        )
        col = Collection(cfg)
        col.upsert(points(10))
        col.checkpoint()
        col.close()
        revived = Collection(cfg)
        assert len(revived) == 0  # snapshot-less checkpoint discards history
        revived.close()


class TestPayloadIndex:
    def test_create_payload_index(self):
        col = make()
        col.upsert(points(30))
        col.create_payload_index("g", kind="keyword")
        q = np.random.default_rng(7).normal(size=DIM)
        hits = col.search(SearchRequest(vector=q, limit=5, filter=FieldMatch("g", 2),
                                        with_payload=True))
        assert all(h.payload["g"] == 2 for h in hits)

    def test_bad_kind(self):
        col = make()
        with pytest.raises(ValueError):
            col.create_payload_index("g", kind="bogus")
