"""Parallel broadcast–reduce: the thread-pool fan-out must be invisible.

Results of ``Cluster.search`` / ``search_batch`` / ``build_index`` are
asserted bit-identical between a serial fan-out (``max_fanout_threads=1``)
and the default parallel one, and the fan-out telemetry and predicated
batch routing are checked.
"""

import numpy as np
import pytest

from repro.core import (
    CollectionConfig,
    Distance,
    Filter,
    HasId,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)
from repro.core.cluster import Cluster
from repro.core.transport import InstrumentedTransport, LocalTransport

DIM = 16
N = 400


def make_points():
    rng = np.random.default_rng(5)
    vectors = rng.normal(size=(N, DIM)).astype(np.float32)
    return [
        PointStruct(id=i, vector=vectors[i], payload={"bucket": i % 4})
        for i in range(N)
    ]


def make_cluster(max_fanout_threads=None, *, instrument=False, indexed=True):
    transport = (
        InstrumentedTransport(LocalTransport()) if instrument else None
    )
    cluster = Cluster.with_workers(
        4, transport=transport, max_fanout_threads=max_fanout_threads
    )
    cluster.create_collection(
        CollectionConfig(
            "dist",
            VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(indexing_threshold=0),
        )
    )
    cluster.upsert("dist", make_points())
    if indexed:
        cluster.build_index("dist")
    return cluster


def queries(n=12, seed=8):
    return np.random.default_rng(seed).normal(size=(n, DIM)).astype(np.float32)


def hit_keys(hits):
    return [(h.id, h.score) for h in hits]


class TestParallelEqualsSerial:
    def test_search(self):
        serial = make_cluster(1)
        parallel = make_cluster(None)
        for v in queries():
            req = SearchRequest(vector=v, limit=10)
            assert hit_keys(serial.search("dist", req)) == hit_keys(
                parallel.search("dist", req)
            )

    def test_search_batch(self):
        serial = make_cluster(1)
        parallel = make_cluster(None)
        reqs = [SearchRequest(vector=v, limit=10) for v in queries()]
        a = serial.search_batch("dist", reqs)
        b = parallel.search_batch("dist", reqs)
        assert [hit_keys(h) for h in a] == [hit_keys(h) for h in b]

    def test_build_index(self):
        serial = make_cluster(1, indexed=False)
        parallel = make_cluster(None, indexed=False)
        built_serial = serial.build_index("dist")
        built_parallel = parallel.build_index("dist")
        assert built_serial == built_parallel
        for v in queries():
            req = SearchRequest(vector=v, limit=10)
            assert hit_keys(serial.search("dist", req)) == hit_keys(
                parallel.search("dist", req)
            )

    def test_search_groups(self):
        serial = make_cluster(1)
        parallel = make_cluster(None)
        req = SearchRequest(vector=queries()[0], limit=8)
        a = serial.search_groups("dist", req, group_by="bucket", group_size=2, limit=3)
        b = parallel.search_groups("dist", req, group_by="bucket", group_size=2, limit=3)
        assert [(k, hit_keys(hits)) for k, hits in a] == [
            (k, hit_keys(hits)) for k, hits in b
        ]


class TestFanoutTelemetry:
    def test_stats_recorded(self):
        cluster = make_cluster(None)
        cluster.fanout_stats.reset()
        cluster.search("dist", SearchRequest(vector=queries()[0], limit=5))
        stats = cluster.fanout_stats
        assert stats.fanouts == 1
        assert stats.total_calls == 4
        assert stats.max_width == 4
        assert stats.mean_width == 4.0
        assert stats.wall_seconds > 0
        assert len(stats.worker_seconds) == 4

    def test_one_transport_call_per_worker_in_parallel(self):
        cluster = make_cluster(None, instrument=True)
        cluster.transport.stats.reset()
        reqs = [SearchRequest(vector=v, limit=5) for v in queries(6)]
        cluster.search_batch("dist", reqs)
        assert cluster.transport.stats.calls_by_method.get("search_batch") == 4

    def test_close_is_idempotent(self):
        cluster = make_cluster(None)
        cluster.search("dist", SearchRequest(vector=queries()[0], limit=5))
        cluster.close()
        cluster.close()
        # the pool is recreated on demand after close
        assert len(cluster.search("dist", SearchRequest(vector=queries()[0], limit=5))) == 5


class TestPredicatedBatchRouting:
    def _target_ids(self, cluster):
        """Point ids that all live on shard 0 (one worker owns them)."""
        state = cluster._state("dist")
        return [pid for pid in range(N) if state.router.shard_for(pid) == 0]

    def test_all_predicated_batch_skips_workers(self):
        cluster = make_cluster(None, instrument=True)
        ids = self._target_ids(cluster)[:6]
        reqs = [
            SearchRequest(vector=v, limit=4, filter=Filter(must=[HasId(ids)]))
            for v in queries(3)
        ]
        cluster.transport.stats.reset()
        results = cluster.search_batch("dist", reqs)
        # all target ids live on shard 0 -> exactly one worker is called
        assert cluster.transport.stats.calls_by_method.get("search_batch") == 1
        for hits in results:
            assert {h.id for h in hits} <= set(ids)

    def test_mixed_batch_broadcasts(self):
        cluster = make_cluster(None, instrument=True)
        ids = self._target_ids(cluster)[:6]
        reqs = [
            SearchRequest(vector=queries(1)[0], limit=4, filter=Filter(must=[HasId(ids)])),
            SearchRequest(vector=queries(1)[0], limit=4),  # unpredicated
        ]
        cluster.transport.stats.reset()
        cluster.search_batch("dist", reqs)
        assert cluster.transport.stats.calls_by_method.get("search_batch") == 4

    def test_predicated_batch_matches_unrouted_results(self):
        routed = make_cluster(None)
        serial = make_cluster(1)
        ids = self._target_ids(routed)[:6]
        reqs = [
            SearchRequest(vector=v, limit=4, filter=Filter(must=[HasId(ids)]))
            for v in queries(4)
        ]
        a = routed.search_batch("dist", reqs)
        b = serial.search_batch("dist", reqs)
        assert [hit_keys(h) for h in a] == [hit_keys(h) for h in b]

    def test_empty_batch(self):
        cluster = make_cluster(None)
        assert cluster.search_batch("dist", []) == []


class TestFanoutWidthKnob:
    @pytest.mark.parametrize("width", [1, 2, 3, None, 0])
    def test_any_width_same_results(self, width):
        cluster = make_cluster(width)
        expected = make_cluster(1)
        reqs = [SearchRequest(vector=v, limit=10) for v in queries(6)]
        assert [hit_keys(h) for h in cluster.search_batch("dist", reqs)] == [
            hit_keys(h) for h in expected.search_batch("dist", reqs)
        ]
