"""Property: a cached cluster is bit-identical to an uncached twin.

Two clusters are built from the same seed and driven through the same
interleaved upsert / delete / search sequence — one with the multi-tier
result cache enabled, one without.  Every search must return exactly the
same ``(id, score)`` list and shard accounting on both, whatever mix of
repeated queries, overwrites and deletes the sequence contains.  The
deterministic tests extend the same invariant across a
:class:`MaintenanceDriver` pass over every shard and a live reshard
cutover (``add_worker(rebalance=True)``), the two swap protocols the
generation fence has to survive."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)
from repro.core.cluster import Cluster
from repro.core.maintenance import MaintenanceDriver
from repro.core.worker import Worker

DIM = 8
N_SEED_POINTS = 40
ID_POOL = 64
QUERY_POOL = 8

_RNG = np.random.default_rng(11)
_VECTORS = _RNG.normal(size=(ID_POOL, 4, DIM)).astype(np.float32)  # id x version
_QUERIES = _RNG.normal(size=(QUERY_POOL, DIM)).astype(np.float32)


def config(name="papers", **kwargs):
    defaults = dict(optimizer=OptimizerConfig(indexing_threshold=0), shard_number=4)
    defaults.update(kwargs)
    return CollectionConfig(
        name, VectorParams(size=DIM, distance=Distance.COSINE), **defaults
    )


def seed_points():
    return [
        PointStruct(id=i, vector=_VECTORS[i][0], payload={"i": i})
        for i in range(N_SEED_POINTS)
    ]


def make_pair(**kwargs):
    pair = []
    for cached in (True, False):
        cluster = Cluster.with_workers(2)
        cluster.create_collection(config(**kwargs))
        cluster.upsert("papers", seed_points())
        if cached:
            cluster.enable_cache()
        pair.append(cluster)
    return pair


def hit_keys(result):
    return [(h.id, h.score) for h in result]


def assert_same_answer(cached, plain, request):
    want = plain.search("papers", request)
    have = cached.search("papers", request)
    assert hit_keys(have) == hit_keys(want)
    assert (have.shards_total, have.shards_answered) == (
        want.shards_total, want.shards_answered,
    )


# -- the hypothesis sweep -----------------------------------------------------

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("upsert"),
            st.integers(0, ID_POOL - 1),
            st.integers(0, _VECTORS.shape[1] - 1),
        ),
        st.tuples(st.just("delete"), st.integers(0, ID_POOL - 1)),
        st.tuples(
            st.just("search"),
            st.integers(0, QUERY_POOL - 1),
            st.integers(1, 10),
        ),
    ),
    min_size=1,
    max_size=30,
)


@given(ops=ops)
@settings(max_examples=15, deadline=None)
def test_property_cached_cluster_bit_identical_to_uncached_twin(ops):
    cached, plain = make_pair()
    live = set(range(N_SEED_POINTS))
    try:
        for op in ops:
            if op[0] == "upsert":
                _, pid, version = op
                point = [PointStruct(id=pid, vector=_VECTORS[pid][version])]
                cached.upsert("papers", list(point))
                plain.upsert("papers", list(point))
                live.add(pid)
            elif op[0] == "delete":
                if op[1] not in live:
                    continue  # deleting a missing id raises by contract
                live.discard(op[1])
                cached.delete("papers", [op[1]])
                plain.delete("papers", [op[1]])
            else:
                _, qi, limit = op
                request = SearchRequest(vector=_QUERIES[qi], limit=limit)
                assert_same_answer(cached, plain, request)
        # Final sweep: every pooled query, after all mutations settled.
        for qi in range(QUERY_POOL):
            assert_same_answer(
                cached, plain, SearchRequest(vector=_QUERIES[qi], limit=10)
            )
        stats = cached.result_cache.stats.snapshot()
        assert stats["lookups"] >= QUERY_POOL
    finally:
        cached.close()
        plain.close()


# -- deterministic fence crossings -------------------------------------------


def test_cache_survives_maintenance_driver_pass():
    """A maintenance pass swaps segments behind the cache's back.  The swap
    is result-preserving, so answers must stay bit-identical — whether the
    cache kept serving (cluster tier, epoch unchanged) or re-validated
    (shard tier sees the new generation)."""
    cached, plain = make_pair(shard_number=4)
    try:
        # Deletes leave vacuum work for the maintenance pass to pick up.
        doomed = list(range(0, N_SEED_POINTS, 3))
        cached.delete("papers", list(doomed))
        plain.delete("papers", list(doomed))
        requests = [SearchRequest(vector=_QUERIES[qi], limit=10) for qi in range(4)]
        for request in requests:
            assert_same_answer(cached, plain, request)  # warm the cache
        for cluster in (cached, plain):
            for worker in cluster.workers():
                for shard_id in worker.shard_ids("papers"):
                    driver = MaintenanceDriver(worker._shard("papers", shard_id))  # noqa: SLF001
                    driver.run_once()
                    assert driver.stats.snapshot()["errors"] == 0
        for request in requests:
            assert_same_answer(cached, plain, request)
    finally:
        cached.close()
        plain.close()


def test_cache_survives_live_reshard_cutover():
    """Mid-sweep scale-out: warm cache, migrate shards to a new worker,
    keep writing, and stay bit-identical with the uncached twin."""
    cached, plain = make_pair(shard_number=8)
    try:
        requests = [SearchRequest(vector=_QUERIES[qi], limit=10) for qi in range(4)]
        for request in requests:
            assert_same_answer(cached, plain, request)  # warm
        for cluster in (cached, plain):
            moves = cluster.add_worker(Worker("w-new"), rebalance=True)
            assert moves
        for request in requests:
            assert_same_answer(cached, plain, request)
        # Post-cutover writes keep fencing correctly on the new topology.
        fresh = [PointStruct(id=900 + i, vector=_QUERIES[i]) for i in range(4)]
        cached.upsert("papers", list(fresh))
        plain.upsert("papers", list(fresh))
        for i, request in enumerate(requests):
            assert_same_answer(cached, plain, request)
            assert cached.search("papers", request)[0].id == 900 + i
    finally:
        cached.close()
        plain.close()
