"""Recommend API tests (collection-level and distributed)."""

import numpy as np
import pytest

from repro.core import (
    Collection,
    CollectionConfig,
    Distance,
    FieldMatch,
    OptimizerConfig,
    PointStruct,
    VectorParams,
)
from repro.core.cluster import Cluster
from repro.core.errors import BadRequestError
from repro.core.recommend import RecommendRequest, build_recommend_vector

DIM = 16


def config(name="rec"):
    return CollectionConfig(
        name, VectorParams(size=DIM, distance=Distance.COSINE),
        optimizer=OptimizerConfig(indexing_threshold=0),
    )


@pytest.fixture
def clustered_collection():
    """Two well-separated clusters of points: ids 0-49 near +e0, 50-99 near +e1."""
    rng = np.random.default_rng(0)
    points = []
    for i in range(50):
        v = np.zeros(DIM)
        v[0] = 1.0
        points.append(PointStruct(id=i, vector=v + 0.05 * rng.normal(size=DIM),
                                  payload={"cluster": "a"}))
    for i in range(50, 100):
        v = np.zeros(DIM)
        v[1] = 1.0
        points.append(PointStruct(id=i, vector=v + 0.05 * rng.normal(size=DIM),
                                  payload={"cluster": "b"}))
    col = Collection(config())
    col.upsert(points)
    return col


class TestRequestValidation:
    def test_requires_positive(self):
        with pytest.raises(BadRequestError):
            RecommendRequest(positive=[])

    def test_unknown_strategy(self):
        with pytest.raises(BadRequestError):
            RecommendRequest(positive=[1], strategy="bogus")

    def test_example_ids_mixed(self):
        req = RecommendRequest(positive=[1, np.zeros(DIM)], negative=[2])
        assert req.example_ids() == {1, 2}


class TestAverageVector:
    def test_positive_only_finds_cluster(self, clustered_collection):
        req = RecommendRequest(positive=[0, 1, 2], limit=10)
        hits = clustered_collection.recommend(req)
        assert len(hits) == 10
        assert all(h.id < 50 for h in hits)          # stays in cluster a
        assert all(h.id not in (0, 1, 2) for h in hits)  # examples excluded

    def test_negative_pushes_away(self, clustered_collection):
        # positive in cluster a, negative in cluster a too -> target drifts;
        # positive a + negative b must stay firmly in a
        req = RecommendRequest(positive=[0], negative=[60], limit=10)
        hits = clustered_collection.recommend(req)
        assert all(h.id < 50 for h in hits)

    def test_raw_vector_examples(self, clustered_collection):
        v = np.zeros(DIM)
        v[1] = 1.0
        req = RecommendRequest(positive=[v], limit=5)
        hits = clustered_collection.recommend(req)
        assert all(h.id >= 50 for h in hits)

    def test_with_filter(self, clustered_collection):
        req = RecommendRequest(
            positive=[0], limit=5, filter=FieldMatch("cluster", "b"), with_payload=True
        )
        hits = clustered_collection.recommend(req)
        assert all(h.payload["cluster"] == "b" for h in hits)

    def test_rocchio_vector(self, clustered_collection):
        lookup = lambda pid: clustered_collection.retrieve(pid, with_vector=True).vector
        req = RecommendRequest(positive=[0], negative=[60])
        target = build_recommend_vector(req, lookup)
        pos = lookup(0)
        neg = lookup(60)
        assert np.allclose(target, pos + (pos - neg), atol=1e-6)


class TestBestScore:
    def test_best_score_ranks_cluster(self, clustered_collection):
        req = RecommendRequest(positive=[0, 1], negative=[60], limit=8,
                               strategy="best_score")
        hits = clustered_collection.recommend(req)
        assert len(hits) == 8
        assert all(h.id < 50 for h in hits)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)
        assert all(h.vector is None for h in hits)  # vectors stripped


class TestDistributedRecommend:
    def test_cluster_recommend_matches_collection(self, clustered_collection):
        pts = []
        for seg in clustered_collection.segments:
            for rec in seg.iter_points(with_vector=True):
                pts.append(PointStruct(id=rec.id, vector=rec.vector, payload=rec.payload))
        cluster = Cluster.with_workers(4)
        cluster.create_collection(config("dist"))
        cluster.upsert("dist", pts)
        req = RecommendRequest(positive=[0, 1, 2], limit=10)
        local = [h.id for h in clustered_collection.recommend(req)]
        dist = [h.id for h in cluster.recommend("dist", req)]
        assert dist == local
