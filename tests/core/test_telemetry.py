"""Telemetry aggregation tests."""

import numpy as np
import pytest

from repro.core import (
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)
from repro.core.cluster import Cluster
from repro.core.telemetry import collect

DIM = 8


def make_cluster(n=4):
    cluster = Cluster.with_workers(n)
    cluster.create_collection(
        CollectionConfig(
            "c", VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(indexing_threshold=0),
        )
    )
    return cluster


def points(n):
    rng = np.random.default_rng(0)
    return [PointStruct(id=i, vector=rng.normal(size=DIM)) for i in range(n)]


class TestCollect:
    def test_counters_after_insert(self):
        cluster = make_cluster()
        cluster.upsert("c", points(100))
        snap = collect(cluster)
        assert snap.total_vectors_inserted == 100
        assert snap.total_points == 100
        assert len(snap.workers) == 4

    def test_index_builds_recorded(self):
        cluster = make_cluster()
        cluster.upsert("c", points(100))
        cluster.build_index("c")
        snap = collect(cluster)
        total_built = sum(
            n for w in snap.workers.values() for (_, _, n) in w.index_builds
        )
        assert total_built == 100

    def test_search_counters_and_distance_computations(self):
        cluster = make_cluster()
        cluster.upsert("c", points(200))
        cluster.build_index("c")
        before = collect(cluster)
        for _ in range(5):
            cluster.search("c", SearchRequest(vector=np.ones(DIM), limit=5))
        delta = collect(cluster).diff(before)
        assert delta.total_searches == 5 * 4  # every worker touched per query
        assert delta.total_queries == 20
        assert delta.total_distance_computations > 0
        assert delta.total_vectors_inserted == 0

    def test_per_node_and_imbalance(self):
        cluster = make_cluster(8)  # 2 nodes
        cluster.upsert("c", points(400))
        snap = collect(cluster)
        per_node = snap.per_node()
        assert set(per_node) == {"node-0", "node-1"}
        assert sum(per_node.values()) == 400
        assert 1.0 <= snap.imbalance() < 1.5  # hash sharding is near-uniform

    def test_empty_cluster(self):
        cluster = Cluster.with_workers(2)
        snap = collect(cluster)
        assert snap.total_points == 0
        assert snap.imbalance() == 1.0


class TestFailoverTelemetry:
    def test_failover_counters_surface(self):
        from repro.core.transport import FaultInjectingTransport, LocalTransport
        from repro.core.worker import Worker

        faulty = FaultInjectingTransport(LocalTransport(), advertise_failures=False)
        cluster = Cluster(faulty)
        for i in range(3):
            cluster.add_worker(Worker(f"w{i}"))
        cluster.create_collection(
            CollectionConfig(
                "c", VectorParams(size=DIM, distance=Distance.COSINE),
                optimizer=OptimizerConfig(indexing_threshold=0),
                replication_factor=2,
            )
        )
        cluster.upsert("c", points(60))
        before = collect(cluster)
        faulty.fail_worker("w1")
        for _ in range(4):
            cluster.search("c", SearchRequest(vector=np.ones(DIM), limit=5))
        delta = collect(cluster).diff(before)
        assert delta.failover.failovers > 0
        assert delta.failover.breaker_opens >= 1
        assert dict(delta.failover.breaker_state)["w1"] == "open"

    def test_healthy_cluster_zero_failover_counters(self):
        cluster = make_cluster()
        cluster.upsert("c", points(50))
        cluster.search("c", SearchRequest(vector=np.ones(DIM), limit=5))
        snap = collect(cluster)
        assert snap.failover.failovers == 0
        assert snap.failover.retries == 0
        assert snap.failover.degraded_queries == 0


class TestSaturationReproduction:
    def test_single_worker_build_saturates_node(self):
        """§3.3 profiling: 'a single worker already utilizes 90-97% of the
        compute node's CPU capacity during index construction'."""
        from repro.bench.simscale import simulate_index_build_with_utilization

        _, utils = simulate_index_build_with_utilization(1)
        assert len(utils) == 1
        assert 0.90 <= utils[0] <= 0.97

    def test_packed_build_also_saturates(self):
        from repro.bench.simscale import simulate_index_build_with_utilization

        _, utils = simulate_index_build_with_utilization(32)
        assert all(u > 0.9 for u in utils)
