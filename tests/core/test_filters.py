"""Filter DSL tests, including boolean-algebra properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.filters import (
    FieldIn,
    FieldMatch,
    FieldRange,
    Filter,
    HasId,
    IsEmpty,
    matches,
)

PAYLOAD = {"tag": "a", "year": 2015, "nested": {"depth": 3}, "list": ["x", "y"], "empty": []}


class TestFieldMatch:
    def test_match(self):
        assert FieldMatch("tag", "a").evaluate(1, PAYLOAD)
        assert not FieldMatch("tag", "b").evaluate(1, PAYLOAD)

    def test_missing_key(self):
        assert not FieldMatch("nope", "a").evaluate(1, PAYLOAD)

    def test_none_payload(self):
        assert not FieldMatch("tag", "a").evaluate(1, None)

    def test_dotted_path(self):
        assert FieldMatch("nested.depth", 3).evaluate(1, PAYLOAD)
        assert not FieldMatch("nested.missing", 3).evaluate(1, PAYLOAD)

    def test_list_membership(self):
        assert FieldMatch("list", "x").evaluate(1, PAYLOAD)
        assert not FieldMatch("list", "z").evaluate(1, PAYLOAD)


class TestFieldRange:
    def test_requires_bound(self):
        with pytest.raises(ValueError):
            FieldRange("year")

    def test_closed_bounds(self):
        assert FieldRange("year", gte=2015, lte=2015).evaluate(1, PAYLOAD)

    def test_open_bounds(self):
        assert not FieldRange("year", gt=2015).evaluate(1, PAYLOAD)
        assert not FieldRange("year", lt=2015).evaluate(1, PAYLOAD)

    def test_non_numeric_value(self):
        assert not FieldRange("tag", gte=0).evaluate(1, PAYLOAD)

    def test_bool_is_not_numeric(self):
        assert not FieldRange("flag", gte=0).evaluate(1, {"flag": True})


class TestOtherConditions:
    def test_field_in(self):
        assert FieldIn("tag", ["a", "b"]).evaluate(1, PAYLOAD)
        assert not FieldIn("tag", ["c"]).evaluate(1, PAYLOAD)

    def test_has_id(self):
        assert HasId([1, 2]).evaluate(1, PAYLOAD)
        assert not HasId([2]).evaluate(1, PAYLOAD)

    def test_is_empty(self):
        assert IsEmpty("empty").evaluate(1, PAYLOAD)
        assert IsEmpty("missing").evaluate(1, PAYLOAD)
        assert not IsEmpty("list").evaluate(1, PAYLOAD)
        assert not IsEmpty("year").evaluate(1, PAYLOAD)


class TestFilter:
    def test_trivial(self):
        assert Filter().is_trivial()
        assert Filter().evaluate(1, PAYLOAD)
        assert matches(None, 1, PAYLOAD)

    def test_must_all(self):
        f = Filter(must=[FieldMatch("tag", "a"), FieldRange("year", gte=2000)])
        assert f.evaluate(1, PAYLOAD)
        f2 = Filter(must=[FieldMatch("tag", "a"), FieldRange("year", gte=2020)])
        assert not f2.evaluate(1, PAYLOAD)

    def test_should_any(self):
        f = Filter(should=[FieldMatch("tag", "z"), FieldMatch("tag", "a")])
        assert f.evaluate(1, PAYLOAD)
        f2 = Filter(should=[FieldMatch("tag", "z")])
        assert not f2.evaluate(1, PAYLOAD)

    def test_must_not(self):
        assert not Filter(must_not=[FieldMatch("tag", "a")]).evaluate(1, PAYLOAD)
        assert Filter(must_not=[FieldMatch("tag", "z")]).evaluate(1, PAYLOAD)

    def test_nested_filters(self):
        inner = Filter(should=[FieldMatch("tag", "a"), FieldMatch("tag", "b")])
        outer = Filter(must=[inner, FieldRange("year", gte=2000)])
        assert outer.evaluate(1, PAYLOAD)


# -- property-based boolean algebra ----------------------------------------

payloads = st.fixed_dictionaries(
    {
        "tag": st.sampled_from(["a", "b", "c"]),
        "year": st.integers(1990, 2030),
    }
)
conditions = st.one_of(
    st.builds(FieldMatch, st.just("tag"), st.sampled_from(["a", "b", "c"])),
    st.builds(lambda lo: FieldRange("year", gte=lo), st.integers(1990, 2030)),
)


@given(conditions, payloads)
def test_must_not_is_negation(cond, payload):
    direct = cond.evaluate(1, payload)
    negated = Filter(must_not=[cond]).evaluate(1, payload)
    assert direct != negated


@given(conditions, conditions, payloads)
def test_must_is_conjunction(c1, c2, payload):
    both = Filter(must=[c1, c2]).evaluate(1, payload)
    assert both == (c1.evaluate(1, payload) and c2.evaluate(1, payload))


@given(conditions, conditions, payloads)
def test_should_is_disjunction(c1, c2, payload):
    either = Filter(should=[c1, c2]).evaluate(1, payload)
    assert either == (c1.evaluate(1, payload) or c2.evaluate(1, payload))


@given(conditions, payloads)
def test_double_negation(cond, payload):
    double = Filter(must_not=[Filter(must_not=[cond])]).evaluate(1, payload)
    assert double == cond.evaluate(1, payload)


@given(conditions, conditions, payloads)
def test_de_morgan(c1, c2, payload):
    """not(A and B) == (not A) or (not B)."""
    lhs = Filter(must_not=[Filter(must=[c1, c2])]).evaluate(1, payload)
    rhs = Filter(
        should=[Filter(must_not=[c1]), Filter(must_not=[c2])]
    ).evaluate(1, payload)
    assert lhs == rhs
