"""Query coalescer tests: policy, stats, grouping, backpressure, shutdown,
per-request failover demux (a failed shard must not poison the batch), and
the bit-identity property coalesced == serial ``Cluster.search``."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CollectionConfig,
    Distance,
    HasId,
    OptimizerConfig,
    PointStruct,
    SearchParams,
    SearchRequest,
    VectorParams,
)
from repro.core.cluster import Cluster
from repro.core.errors import NoReplicaAvailableError
from repro.core.scheduler import CoalescePolicy, CoalesceStats, QueryCoalescer
from repro.core.transport import FaultInjectingTransport, LocalTransport
from repro.core.worker import Worker

DIM = 8
N_POINTS = 120


def config(name="papers", **kwargs):
    defaults = dict(
        optimizer=OptimizerConfig(indexing_threshold=0), shard_number=4
    )
    defaults.update(kwargs)
    return CollectionConfig(
        name, VectorParams(size=DIM, distance=Distance.COSINE), **defaults
    )


def points(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        PointStruct(id=i, vector=rng.normal(size=DIM), payload={"i": i})
        for i in range(n)
    ]


def make_cluster(n_workers=4, **kwargs):
    cluster = Cluster.with_workers(n_workers)
    cluster.create_collection(config(**kwargs))
    cluster.upsert("papers", points(N_POINTS))
    return cluster


def queries(n, seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=DIM) for _ in range(n)]


def hit_keys(result):
    return [(h.id, h.score) for h in result]


class TestCoalescePolicy:
    def test_defaults_valid(self):
        p = CoalescePolicy()
        assert p.max_batch >= 1
        assert p.max_wait_s == p.max_wait_us * 1e-6

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_batch=0),
            dict(max_wait_us=-1.0),
            dict(min_wait_us=-1.0),
            dict(min_wait_us=10.0, max_wait_us=5.0),
            dict(queue_capacity=0),
            dict(dispatch_threads=0),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            CoalescePolicy(**kwargs)


class TestCoalesceStats:
    def test_record_and_mean(self):
        stats = CoalesceStats()
        stats.record_batch(1)
        stats.record_batch(7)
        stats.record_bypass()
        snap = stats.snapshot()
        assert snap["batches"] == 2
        assert snap["coalesced"] == snap["total_width"] == 8
        assert snap["max_width"] == 7
        assert snap["solo_batches"] == 1
        assert snap["bypasses"] == 1
        assert stats.mean_width == 4.0
        stats.reset()
        assert stats.snapshot() == {
            "batches": 0, "coalesced": 0, "total_width": 0,
            "max_width": 0, "solo_batches": 0, "bypasses": 0,
            "deduped": 0,
        }


class TestCompatKey:
    def test_same_defaults_share_key(self):
        cluster = make_cluster()
        co = QueryCoalescer.for_cluster(cluster)
        qs = queries(2)
        k1 = co.compat_key("papers", SearchRequest(vector=qs[0], limit=5))
        k2 = co.compat_key("papers", SearchRequest(vector=qs[1], limit=50,
                                                   allow_partial=True))
        # limit / allow_partial are per-request and must not split batches.
        assert k1 == k2
        cluster.close()

    def test_params_and_filters_split_key(self):
        cluster = make_cluster()
        co = QueryCoalescer.for_cluster(cluster)
        q = queries(1)[0]
        base = co.compat_key("papers", SearchRequest(vector=q))
        ef = co.compat_key(
            "papers", SearchRequest(vector=q, params=SearchParams(hnsw_ef=99))
        )
        exact = co.compat_key(
            "papers", SearchRequest(vector=q, params=SearchParams(exact=True))
        )
        pred = co.compat_key(
            "papers", SearchRequest(vector=q, filter=HasId(frozenset([1, 2])))
        )
        assert len({base, ef, exact, pred}) == 4
        # Same predicate shard signature → same key.
        pred2 = co.compat_key(
            "papers", SearchRequest(vector=q, filter=HasId(frozenset([1, 2])))
        )
        assert pred == pred2
        cluster.close()

    def test_alias_resolves_to_canonical_key(self):
        cluster = make_cluster()
        cluster.create_alias("lookup", "papers")
        co = QueryCoalescer.for_cluster(cluster)
        q = queries(1)[0]
        assert co.compat_key("lookup", SearchRequest(vector=q)) == co.compat_key(
            "papers", SearchRequest(vector=q)
        )
        cluster.close()


class TestCoalescedResults:
    def test_concurrent_queries_match_serial(self):
        cluster = make_cluster()
        qs = queries(24)
        reqs = [SearchRequest(vector=q, limit=5) for q in qs]
        expected = [cluster.search("papers", r) for r in reqs]
        co = QueryCoalescer.for_cluster(
            cluster, policy=CoalescePolicy(max_wait_us=2000.0)
        )
        with ThreadPoolExecutor(max_workers=12) as pool:
            got = list(pool.map(lambda r: co.search("papers", r), reqs))
        for want, have in zip(expected, got):
            assert hit_keys(want) == hit_keys(have)
            assert (want.shards_total, want.shards_answered) == (
                have.shards_total, have.shards_answered
            )
        snap = co.stats.snapshot()
        assert snap["coalesced"] == 24
        assert snap["batches"] <= 24
        cluster.close()

    def test_incompatible_requests_not_merged(self):
        cluster = make_cluster()
        # A held-open window guarantees concurrent submissions would merge
        # if (wrongly) considered compatible.
        co = QueryCoalescer.for_cluster(
            cluster,
            policy=CoalescePolicy(max_wait_us=50_000.0, adaptive=False),
        )
        q = queries(1)[0]
        mixed = [
            SearchRequest(vector=q, limit=5),
            SearchRequest(vector=q, limit=5, params=SearchParams(hnsw_ef=77)),
            SearchRequest(vector=q, limit=5, filter=HasId(frozenset([3]))),
        ]
        expected = [cluster.search("papers", r) for r in mixed]
        futures = [co.submit("papers", r) for r in mixed]
        got = [f.result(timeout=10) for f in futures]
        for want, have in zip(expected, got):
            assert hit_keys(want) == hit_keys(have)
            assert (want.shards_total, want.shards_answered) == (
                have.shards_total, have.shards_answered
            )
        # Three distinct compat keys → three dispatched batches.
        assert co.stats.snapshot()["batches"] == 3
        cluster.close()

    def test_single_batch_formed_when_window_open(self):
        cluster = make_cluster()
        co = QueryCoalescer.for_cluster(
            cluster,
            policy=CoalescePolicy(max_wait_us=200_000.0, adaptive=False),
        )
        futures = [
            co.submit("papers", SearchRequest(vector=q, limit=5))
            for q in queries(6)
        ]
        results = [f.result(timeout=10) for f in futures]
        assert all(len(r) == 5 for r in results)
        snap = co.stats.snapshot()
        assert snap["batches"] < 6  # amortized: fewer fan-outs than queries
        assert snap["max_width"] >= 2
        cluster.close()


class TestBackpressure:
    def test_full_queue_bypasses(self):
        from repro.core.scheduler import _Pending

        cluster = make_cluster()
        co = QueryCoalescer.for_cluster(
            cluster,
            policy=CoalescePolicy(queue_capacity=1, max_wait_us=50_000.0,
                                  adaptive=False),
        )
        q = queries(1)[0]
        request = SearchRequest(vector=q, limit=5)
        # Fill the queue without notifying, so the collector (blocked in
        # wait) cannot drain it before the next submit sees it full.
        stuffed = _Pending(co.compat_key("papers", request), "papers", request)
        with co._wakeup:
            co._queue.append(stuffed)
        refused = co.submit("papers", request)
        assert refused is None  # refused, caller runs the direct path
        assert co.stats.snapshot()["bypasses"] == 1
        # The blocking entry point still completes via fallback.
        expected = cluster.search("papers", request)
        assert hit_keys(co.search("papers", request)) == hit_keys(expected)
        # Wake the collector; the stuffed entry dispatches normally.
        with co._wakeup:
            co._wakeup.notify()
        assert stuffed.future.result(timeout=10) is not None
        cluster.close()

    def test_adaptive_window_moves_between_bounds(self):
        cluster = make_cluster()
        policy = CoalescePolicy(max_batch=8, max_wait_us=1000.0, adaptive=True)
        co = QueryCoalescer.for_cluster(cluster, policy=policy)
        # Any sign of concurrency grows the window: a batch of >=2...
        co._adapt_window(2, 0)
        assert co.window_s > 0.0
        co._window_s = 0.0
        # ...queries still queued after collecting...
        co._adapt_window(1, 3)
        assert co.window_s > 0.0
        co._window_s = 0.0
        # ...or a fan-out still in flight when the next batch forms (the
        # many-solo-clients signature, where no backlog ever accumulates).
        co._adapt_window(1, 0, 1)
        assert co.window_s > 0.0
        for _ in range(16):
            co._adapt_window(policy.max_batch, 3)
        assert co.window_s == pytest.approx(policy.max_wait_s)
        # Idle solo dispatches shrink it back toward min_wait.
        for _ in range(64):
            co._adapt_window(1, 0)
        assert co.window_s == pytest.approx(policy.min_wait_s)
        cluster.close()


class TestShutdown:
    def test_close_drains_queued_queries(self):
        cluster = make_cluster()
        co = QueryCoalescer.for_cluster(
            cluster,
            policy=CoalescePolicy(max_wait_us=100_000.0, adaptive=False),
        )
        futures = [
            co.submit("papers", SearchRequest(vector=q, limit=3))
            for q in queries(4)
        ]
        co.close()
        for f in futures:
            assert len(f.result(timeout=10)) == 3
        assert co.closed
        assert co.submit("papers", SearchRequest(vector=queries(1)[0])) is None
        co.close()  # idempotent
        cluster.close()

    def test_cluster_close_closes_coalescer(self):
        cluster = make_cluster()
        co = QueryCoalescer.for_cluster(cluster)
        cluster.close()
        assert co.closed

    def test_for_cluster_replaces_closed_instance(self):
        cluster = make_cluster()
        first = QueryCoalescer.for_cluster(cluster)
        first.close()
        second = QueryCoalescer.for_cluster(cluster)
        assert second is not first and not second.closed
        assert cluster.coalescer is second
        cluster.close()


class TestTelemetry:
    def test_stats_histograms_and_diff(self):
        cluster = make_cluster()
        co = QueryCoalescer.for_cluster(cluster)
        before = cluster.telemetry()
        co.search("papers", SearchRequest(vector=queries(1)[0], limit=5))
        after = cluster.telemetry()
        delta = after.diff(before)
        assert delta.coalesce.batches == 1
        assert delta.coalesce.coalesced == 1
        assert delta.coalesce.mean_width == 1.0
        assert after.histograms["coalesce.wait_s"].count == 1
        assert after.histograms["coalesce.width"].count == 1
        cluster.reset_telemetry()
        assert cluster.telemetry().coalesce.batches == 0
        cluster.close()

    def test_dispatch_emits_coalesce_span(self):
        from repro.obs.trace import Tracer, set_tracer

        tracer = Tracer(enabled=True)
        previous = set_tracer(tracer)
        try:
            cluster = make_cluster()
            co = QueryCoalescer.for_cluster(cluster)
            co.search("papers", SearchRequest(vector=queries(1)[0], limit=5))
            names = [s.name for s in tracer.spans()]
            assert "cluster.coalesce" in names
            cluster.close()
        finally:
            set_tracer(previous)


class TestSearchBatchDemux:
    def test_matches_serial_mixed_requests(self):
        cluster = make_cluster()
        qs = queries(6)
        reqs = [
            SearchRequest(vector=qs[0], limit=5),
            SearchRequest(vector=qs[1], limit=2),
            SearchRequest(vector=qs[2], limit=5, params=SearchParams(hnsw_ef=64)),
            SearchRequest(vector=qs[3], limit=5, filter=HasId(frozenset([7, 8]))),
            SearchRequest(vector=qs[4], limit=5, allow_partial=True),
            SearchRequest(vector=qs[5], limit=5,
                          filter=HasId(frozenset())),  # empty predicate
        ]
        expected = [cluster.search("papers", r) for r in reqs]
        got = cluster.search_batch_demux("papers", reqs)
        for want, have in zip(expected, got):
            assert hit_keys(want) == hit_keys(have)
            assert (want.shards_total, want.shards_answered) == (
                have.shards_total, have.shards_answered
            )
        assert cluster.search_batch_demux("papers", []) == []
        cluster.close()

    def _failed_cluster(self):
        """4 workers, rf=1, one worker dead mid-batch → its shards lost."""
        faulty = FaultInjectingTransport(LocalTransport())
        cluster = Cluster(faulty)
        for i in range(4):
            cluster.add_worker(Worker(f"w{i}"))
        cluster.create_collection(config(replication_factor=1))
        cluster.upsert("papers", points(N_POINTS))
        dead = "w1"
        lost_shards = set(cluster._workers[dead].shard_ids("papers"))  # noqa: SLF001
        state = cluster._state("papers")  # noqa: SLF001
        # Point ids pinned to healthy vs lost shards, for predicated requests.
        healthy_ids = [
            i for i in range(N_POINTS)
            if state.router.shard_for(i) not in lost_shards
        ]
        lost_ids = [
            i for i in range(N_POINTS)
            if state.router.shard_for(i) in lost_shards
        ]
        faulty.fail_worker(dead)
        return cluster, lost_shards, healthy_ids, lost_ids

    def test_mid_batch_failure_degrades_only_affected_callers(self):
        """The satellite regression: one batch carrying
        ``allow_partial=True`` callers, strict broadcast callers, and a
        strict caller predicated to healthy shards.  The failure must reach
        exactly the callers whose shard set covers the dead worker."""
        cluster, lost_shards, healthy_ids, lost_ids = self._failed_cluster()
        assert healthy_ids and lost_ids, "need points on both sides"
        q = np.ones(DIM)
        reqs = [
            # [0] broadcast, tolerant → degraded flagged result
            SearchRequest(vector=q, limit=10, allow_partial=True),
            # [1] broadcast, strict → NoReplicaAvailableError
            SearchRequest(vector=q, limit=10),
            # [2] predicated to healthy shards, strict → untouched
            SearchRequest(vector=q, limit=10,
                          filter=HasId(frozenset(healthy_ids[:4]))),
            # [3] predicated to a lost shard, tolerant → degraded, empty
            SearchRequest(vector=q, limit=10,
                          filter=HasId(frozenset(lost_ids[:2])),
                          allow_partial=True),
        ]
        out = cluster.search_batch_demux("papers", reqs)

        degraded = out[0]
        assert not isinstance(degraded, Exception)
        assert degraded.degraded
        assert degraded.shards_answered == degraded.shards_total - len(lost_shards)
        assert all(h.shard_id not in lost_shards for h in degraded)

        assert isinstance(out[1], NoReplicaAvailableError)
        assert out[1].shard_id in lost_shards

        untouched = out[2]
        assert not isinstance(untouched, Exception)
        assert not untouched.degraded
        assert untouched.shards_answered == untouched.shards_total
        assert hit_keys(untouched) == hit_keys(
            cluster.search("papers", reqs[2])
        )

        lost_only = out[3]
        assert not isinstance(lost_only, Exception)
        assert lost_only.degraded
        assert lost_only.shards_answered == 0 and len(lost_only) == 0
        cluster.close()

    def test_mid_batch_failure_through_coalescer_futures(self):
        """Same failure, end to end through the coalescer: mixed
        ``allow_partial`` callers coalesce into one batch (strictness is
        not part of the compat key) and each future resolves with its own
        outcome."""
        cluster, lost_shards, _, _ = self._failed_cluster()
        co = QueryCoalescer.for_cluster(
            cluster,
            policy=CoalescePolicy(max_wait_us=200_000.0, adaptive=False),
        )
        q = np.ones(DIM)
        tolerant = co.submit(
            "papers", SearchRequest(vector=q, limit=10, allow_partial=True)
        )
        strict = co.submit("papers", SearchRequest(vector=q, limit=10))
        result = tolerant.result(timeout=10)
        assert result.degraded
        assert all(h.shard_id not in lost_shards for h in result)
        with pytest.raises(NoReplicaAvailableError):
            strict.result(timeout=10)
        # One shared fan-out batch served both, despite the strict failure.
        assert co.stats.snapshot()["batches"] == 1
        assert co.stats.snapshot()["max_width"] == 2
        cluster.close()


# -- property: coalesced == serial, bit for bit ------------------------------

_PROP_CLUSTER = make_cluster()
_PROP_QUERIES = queries(16, seed=7)


@st.composite
def request_batches(draw):
    n = draw(st.integers(1, 10))
    reqs = []
    for _ in range(n):
        q = _PROP_QUERIES[draw(st.integers(0, len(_PROP_QUERIES) - 1))]
        params = SearchParams(
            hnsw_ef=draw(st.sampled_from([None, 32, 64])),
            exact=draw(st.booleans()),
        )
        flt = draw(
            st.sampled_from([None, "a", "b"])
        )
        if flt == "a":
            flt = HasId(frozenset(range(0, N_POINTS, 7)))
        elif flt == "b":
            flt = HasId(frozenset([3, 4, 5]))
        reqs.append(
            SearchRequest(
                vector=q,
                limit=draw(st.integers(1, 8)),
                params=params,
                filter=flt,
            )
        )
    return reqs


@given(
    reqs=request_batches(),
    wait_us=st.sampled_from([0.0, 200.0, 3000.0]),
    workers=st.integers(1, 8),
)
@settings(max_examples=20, deadline=None)
def test_property_coalesced_bit_identical_to_serial(reqs, wait_us, workers):
    """Across random batch compositions (mixed ef / exact / filters, which
    must land in separate compatibility groups), random collect windows and
    concurrency levels, every coalesced result equals its serial twin."""
    expected = [_PROP_CLUSTER.search("papers", r) for r in reqs]
    co = QueryCoalescer(
        _PROP_CLUSTER, policy=CoalescePolicy(max_wait_us=wait_us)
    )
    try:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            got = list(pool.map(lambda r: co.search("papers", r), reqs))
    finally:
        co.close()
    for want, have in zip(expected, got):
        assert hit_keys(want) == hit_keys(have)
        assert (want.shards_total, want.shards_answered) == (
            have.shards_total, have.shards_answered
        )


def test_property_cluster_teardown():
    """Not a property: closes the module-level cluster after the suite."""
    _PROP_CLUSTER.close()
    assert _PROP_CLUSTER.coalescer is None or _PROP_CLUSTER.coalescer.closed
