"""Snapshot save/load tests."""

import json
import os

import numpy as np
import pytest

from repro.core import (
    Collection,
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
    load_snapshot,
    save_snapshot,
)
from repro.core.errors import SnapshotError

DIM = 8


def filled_collection(n=40):
    col = Collection(
        CollectionConfig(
            "snap", VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(indexing_threshold=0),
        )
    )
    rng = np.random.default_rng(0)
    col.upsert(
        [PointStruct(id=i, vector=rng.normal(size=DIM), payload={"i": i}) for i in range(n)]
    )
    return col


class TestRoundtrip:
    def test_snapshot_roundtrip(self, tmp_path):
        col = filled_collection()
        save_snapshot(col, str(tmp_path / "snap"))
        revived = load_snapshot(str(tmp_path / "snap"))
        assert len(revived) == len(col)
        assert revived.retrieve(5).payload == {"i": 5}
        q = col.retrieve(9, with_vector=True).vector
        assert revived.search(SearchRequest(vector=q, limit=1))[0].id == 9

    def test_config_preserved(self, tmp_path):
        col = filled_collection()
        save_snapshot(col, str(tmp_path / "snap"))
        revived = load_snapshot(str(tmp_path / "snap"))
        assert revived.config.vectors.size == DIM
        assert revived.config.vectors.distance is Distance.COSINE
        assert revived.config.name == "snap"
        assert not revived.config.wal.enabled  # WAL never carried over

    def test_empty_collection(self, tmp_path):
        col = Collection(CollectionConfig("empty", VectorParams(size=DIM)))
        save_snapshot(col, str(tmp_path / "snap"))
        revived = load_snapshot(str(tmp_path / "snap"))
        assert len(revived) == 0

    def test_deleted_points_excluded(self, tmp_path):
        col = filled_collection()
        col.delete([1, 2, 3])
        save_snapshot(col, str(tmp_path / "snap"))
        revived = load_snapshot(str(tmp_path / "snap"))
        assert len(revived) == 37
        assert not revived.contains(2)


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_snapshot(str(tmp_path / "nonexistent"))

    def test_manifest_mismatch(self, tmp_path):
        col = filled_collection(10)
        path = str(tmp_path / "snap")
        save_snapshot(col, path)
        meta = json.load(open(os.path.join(path, "meta.json")))
        meta["points_count"] = 999
        json.dump(meta, open(os.path.join(path, "meta.json"), "w"))
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_bad_version(self, tmp_path):
        col = filled_collection(5)
        path = str(tmp_path / "snap")
        save_snapshot(col, path)
        meta = json.load(open(os.path.join(path, "meta.json")))
        meta["format_version"] = 99
        json.dump(meta, open(os.path.join(path, "meta.json"), "w"))
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_unreadable_vectors(self, tmp_path):
        col = filled_collection(5)
        path = str(tmp_path / "snap")
        save_snapshot(col, path)
        with open(os.path.join(path, "vectors.npy"), "wb") as fh:
            fh.write(b"garbage")
        with pytest.raises(SnapshotError):
            load_snapshot(path)
