"""PayloadStore + secondary index tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.filters import FieldIn, FieldMatch, FieldRange, Filter, HasId
from repro.core.payload import KeywordIndex, NumericIndex, PayloadStore


class TestKeywordIndex:
    def test_add_lookup_remove(self):
        idx = KeywordIndex("tag")
        idx.add(1, "a")
        idx.add(2, "a")
        idx.add(3, "b")
        assert idx.lookup("a") == {1, 2}
        idx.remove(1, "a")
        assert idx.lookup("a") == {2}
        assert idx.cardinality("b") == 1

    def test_list_values(self):
        idx = KeywordIndex("tags")
        idx.add(1, ["x", "y"])
        assert idx.lookup("x") == {1} and idx.lookup("y") == {1}
        idx.remove(1, ["x", "y"])
        assert idx.lookup("x") == set()

    def test_lookup_many(self):
        idx = KeywordIndex("tag")
        idx.add(1, "a")
        idx.add(2, "b")
        assert idx.lookup_many(["a", "b", "z"]) == {1, 2}


class TestNumericIndex:
    def test_range_bounds(self):
        idx = NumericIndex("year")
        for pid, year in [(1, 2000), (2, 2010), (3, 2020)]:
            idx.add(pid, year)
        assert idx.range(gte=2005) == {2, 3}
        assert idx.range(gt=2010) == {3}
        assert idx.range(lte=2010) == {1, 2}
        assert idx.range(gte=2000, lt=2020) == {1, 2}

    def test_remove(self):
        idx = NumericIndex("year")
        idx.add(1, 5)
        idx.remove(1, 5)
        assert idx.range(gte=0) == set()

    def test_ignores_non_numeric(self):
        idx = NumericIndex("year")
        idx.add(1, "not-a-number")
        idx.add(2, True)
        assert idx.range(gte=0) == set()


class TestPayloadStore:
    def test_set_get_delete(self):
        store = PayloadStore()
        store.set(1, {"a": 1})
        assert store.get(1) == {"a": 1}
        store.delete(1)
        assert store.get(1) is None

    def test_set_copies_payload(self):
        store = PayloadStore()
        original = {"a": 1}
        store.set(1, original)
        original["a"] = 99
        assert store.get(1) == {"a": 1}

    def test_overwrite_reindexes(self):
        store = PayloadStore()
        store.create_keyword_index("tag")
        store.set(1, {"tag": "x"})
        store.set(1, {"tag": "y"})
        assert store.prefilter_candidates(FieldMatch("tag", "x")) == set()
        assert store.prefilter_candidates(FieldMatch("tag", "y")) == {1}

    def test_index_backfills_existing(self):
        store = PayloadStore()
        store.set(1, {"tag": "x"})
        store.create_keyword_index("tag")
        assert store.prefilter_candidates(FieldMatch("tag", "x")) == {1}

    def test_prefilter_none_without_index(self):
        store = PayloadStore()
        store.set(1, {"tag": "x"})
        assert store.prefilter_candidates(FieldMatch("tag", "x")) is None

    def test_prefilter_has_id(self):
        store = PayloadStore()
        assert store.prefilter_candidates(HasId([3, 4])) == {3, 4}

    def test_prefilter_intersects_must(self):
        store = PayloadStore()
        store.create_keyword_index("tag")
        store.create_numeric_index("year")
        store.set(1, {"tag": "a", "year": 2000})
        store.set(2, {"tag": "a", "year": 2020})
        store.set(3, {"tag": "b", "year": 2020})
        f = Filter(must=[FieldMatch("tag", "a"), FieldRange("year", gte=2010)])
        assert store.prefilter_candidates(f) == {2}

    def test_prefilter_field_in(self):
        store = PayloadStore()
        store.create_keyword_index("tag")
        store.set(1, {"tag": "a"})
        store.set(2, {"tag": "b"})
        assert store.prefilter_candidates(FieldIn("tag", ["a", "b"])) == {1, 2}


@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.sampled_from(["a", "b"]), st.integers(0, 100)),
        max_size=40,
    )
)
def test_prefilter_is_consistent_with_evaluation(entries):
    """Indexed prefilter must equal brute-force evaluation over all points."""
    store = PayloadStore()
    store.create_keyword_index("tag")
    store.create_numeric_index("year")
    seen = {}
    for pid, tag, year in entries:
        store.set(pid, {"tag": tag, "year": year})
        seen[pid] = {"tag": tag, "year": year}
    flt = Filter(must=[FieldMatch("tag", "a"), FieldRange("year", gte=50)])
    candidates = store.prefilter_candidates(flt)
    brute = {pid for pid in seen if store.evaluate(flt, pid)}
    assert candidates is not None
    assert brute == {pid for pid in candidates if store.evaluate(flt, pid)}
    assert brute <= candidates  # prefilter is a superset guarantee
