"""Flat index tests: exactness against numpy reference."""

import numpy as np
import pytest

from repro.core.index.flat import FlatIndex
from repro.core.storage import VectorArena
from repro.core.types import Distance

DIM = 8


def make(n=100, seed=0, distance=Distance.DOT):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, DIM)).astype(np.float32)
    arena = VectorArena(DIM)
    arena.extend(data)
    index = FlatIndex(arena, distance)
    index.build(data, np.arange(n, dtype=np.int64))
    return arena, index, data


class TestFlat:
    def test_exact_top1(self):
        _, index, data = make()
        offsets, scores = index.search(data[42], 1)
        assert offsets[0] == 42

    def test_matches_numpy_reference(self):
        _, index, data = make(distance=Distance.EUCLID)
        q = np.random.default_rng(1).normal(size=DIM).astype(np.float32)
        offsets, scores = index.search(q, 5)
        ref = np.sum((data - q) ** 2, axis=1)
        expected = np.argsort(ref)[:5]
        assert set(offsets.tolist()) == set(expected.tolist())

    def test_incremental_add(self):
        arena = VectorArena(DIM)
        index = FlatIndex(arena, Distance.DOT)
        v = np.ones(DIM, dtype=np.float32)
        off = arena.append(v)
        index.add(off, v)
        assert index.size == 1
        offsets, _ = index.search(v, 1)
        assert offsets[0] == off

    def test_remove(self):
        _, index, data = make(10)
        index.remove(3)
        offsets, _ = index.search(data[3], 10)
        assert 3 not in offsets.tolist()
        assert index.size == 9

    def test_predicate(self):
        _, index, data = make(50)
        offsets, _ = index.search(data[0], 10, predicate=lambda o: o >= 25)
        assert all(o >= 25 for o in offsets)

    def test_empty_after_predicate(self):
        _, index, data = make(10)
        offsets, scores = index.search(data[0], 5, predicate=lambda o: False)
        assert len(offsets) == 0

    def test_search_batch_matches_single(self):
        _, index, data = make(80)
        queries = data[:4]
        batched = index.search_batch(queries, 5)
        for q, (b_off, b_sc) in zip(queries, batched):
            s_off, s_sc = index.search(q, 5)
            assert b_off.tolist() == s_off.tolist()
            assert np.allclose(b_sc, s_sc)

    def test_search_batch_empty_index(self):
        arena = VectorArena(DIM)
        index = FlatIndex(arena, Distance.DOT)
        out = index.search_batch(np.ones((3, DIM), dtype=np.float32), 5)
        assert all(len(o[0]) == 0 for o in out)

    def test_stats_counted(self):
        _, index, data = make(100)
        index.stats.reset()
        index.search(data[0], 5)
        assert index.stats.distance_computations == 100
