"""Chunking extension tests (§3.1 future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embed.chunking import (
    CHUNK_ID_STRIDE,
    Chunk,
    FixedSizeChunker,
    SentenceChunker,
    chunk_corpus_points,
)
from repro.embed.model import HashingEmbedder
from repro.workloads.pes2o import Pes2oCorpus


class TestFixedSizeChunker:
    def test_validation(self):
        with pytest.raises(ValueError):
            FixedSizeChunker(size=0)
        with pytest.raises(ValueError):
            FixedSizeChunker(size=10, overlap=10)

    def test_empty_text(self):
        assert list(FixedSizeChunker().chunk(0, "")) == []

    def test_short_text_single_chunk(self):
        chunks = list(FixedSizeChunker(size=100, overlap=10).chunk(3, "hello"))
        assert len(chunks) == 1
        assert chunks[0].text == "hello"
        assert chunks[0].point_id == 3 * CHUNK_ID_STRIDE

    def test_coverage_with_overlap(self):
        text = "abcdefghij" * 50  # 500 chars
        chunker = FixedSizeChunker(size=200, overlap=50)
        chunks = list(chunker.chunk(1, text))
        # reconstruct: drop each chunk's overlapping prefix
        rebuilt = chunks[0].text + "".join(c.text[50:] for c in chunks[1:])
        assert rebuilt == text
        assert all(c.n_chars <= 200 for c in chunks)

    def test_expected_chunks_matches_actual(self):
        chunker = FixedSizeChunker(size=1000, overlap=100)
        for n in (0, 1, 999, 1000, 1001, 5000, 12_345):
            actual = len(list(chunker.chunk(0, "x" * n)))
            assert chunker.expected_chunks(n) == actual, n

    @given(st.integers(0, 20_000), st.integers(100, 3_000), st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_all_text_covered(self, n_chars, size, overlap_pct):
        overlap = min(int(size * overlap_pct / 100), size - 1)
        chunker = FixedSizeChunker(size=size, overlap=overlap)
        text = "a" * n_chars
        chunks = list(chunker.chunk(0, text))
        covered = sum(c.n_chars for c in chunks) - overlap * max(0, len(chunks) - 1)
        assert covered >= n_chars  # every character appears in some chunk
        assert [c.index for c in chunks] == list(range(len(chunks)))


class TestSentenceChunker:
    def test_validation(self):
        with pytest.raises(ValueError):
            SentenceChunker(budget=0)

    def test_packs_sentences(self):
        text = "One. Two. Three. Four."
        chunks = list(SentenceChunker(budget=12).chunk(0, text))
        assert len(chunks) >= 2
        # no sentence split mid-way
        for c in chunks:
            assert c.text.count(".") >= 1

    def test_budget_respected_for_multi_sentence_chunks(self):
        text = ("Short sentence here. " * 40).strip()
        chunks = list(SentenceChunker(budget=100).chunk(0, text))
        for c in chunks:
            if c.text.count(".") > 1:
                assert c.n_chars <= 100 + 1

    def test_oversized_sentence_kept_whole(self):
        text = "x" * 500 + "."
        chunks = list(SentenceChunker(budget=100).chunk(0, text))
        assert len(chunks) == 1
        assert chunks[0].n_chars >= 500

    def test_all_words_preserved(self):
        text = "Alpha beta. Gamma delta epsilon. Zeta!"
        chunks = list(SentenceChunker(budget=15).chunk(0, text))
        rebuilt = " ".join(c.text for c in chunks)
        for word in ("Alpha", "beta", "Gamma", "delta", "epsilon", "Zeta"):
            assert word in rebuilt


class TestChunkCorpusPoints:
    def test_points_multiply_entities(self):
        """The paper's prediction: chunking inflates the entity count."""
        corpus = Pes2oCorpus(5, seed=1)
        embedder = HashingEmbedder(dim=32)
        points = list(
            chunk_corpus_points(corpus, embedder, FixedSizeChunker(size=2_000))
        )
        assert len(points) > 5 * 5  # >> one point per paper
        # ids decode back to papers
        for p in points:
            assert 0 <= p.payload["paper_id"] < 5
            assert p.id == p.payload["paper_id"] * CHUNK_ID_STRIDE + p.payload["chunk_index"]

    def test_max_papers(self):
        corpus = Pes2oCorpus(10, seed=2)
        embedder = HashingEmbedder(dim=32)
        points = list(
            chunk_corpus_points(corpus, embedder, FixedSizeChunker(size=5_000),
                                max_papers=2)
        )
        assert {p.payload["paper_id"] for p in points} == {0, 1}
