"""Embedding-job pipeline tests: closed form and DES agree; Table 2 shape."""

import pytest

from repro.embed.batching import BatchingConfig
from repro.embed.pipeline import job_report, run_job_sim
from repro.hpc.node import POLARIS_NODE, SimNode
from repro.perfmodel.calibration import EMBEDDING
from repro.sim.engine import Environment
from repro.workloads.pes2o import Pes2oCorpus


class TestJobReport:
    def test_empty_job(self):
        report = job_report([])
        assert report.papers == 0
        assert report.inference_s == 0.0
        assert report.sequential_rate == 0.0

    def test_table2_shape(self):
        corpus = Pes2oCorpus(4_000, seed=1)
        report = job_report(corpus.char_counts())
        assert report.model_load_s == pytest.approx(EMBEDDING.model_load_s, rel=0.01)
        assert report.io_s == pytest.approx(EMBEDDING.io_s, rel=0.2)
        assert report.inference_s == pytest.approx(EMBEDDING.inference_s, rel=0.15)
        assert report.inference_fraction > 0.97

    def test_sequential_rate_low(self):
        corpus = Pes2oCorpus(8_000, seed=2)
        report = job_report(corpus.char_counts())
        assert report.sequential_rate < EMBEDDING.sequential_fallback_rate

    def test_more_gpus_faster_inference(self):
        chars = [30_000] * 1_000
        t4 = job_report(chars, n_gpus=4).inference_s
        t1 = job_report(chars, n_gpus=1).inference_s
        assert t1 == pytest.approx(4 * t4, rel=0.05)

    def test_oom_fallback_counted(self):
        # craft a stream that produces a padded-batch OOM: a monster doc
        # arriving after small ones within one batch window
        chars = [5_000] * 7 + [110_000]
        report = job_report(chars, n_gpus=1)
        assert report.oom_batches >= 1
        assert report.sequential_papers >= 8

    def test_custom_batching_config(self):
        chars = [10_000] * 100
        tight = job_report(chars, n_gpus=1, config=BatchingConfig(char_limit=10_000, max_papers=1))
        loose = job_report(chars, n_gpus=1)
        assert tight.batches > loose.batches


class TestDesAgreement:
    def test_des_matches_closed_form(self):
        corpus = Pes2oCorpus(400, seed=3)
        chars = corpus.char_counts()
        closed = job_report(chars, n_gpus=4)
        env = Environment()
        node = SimNode(env, POLARIS_NODE, "n0")
        report = env.run(run_job_sim(env, node, chars))
        assert report.papers == closed.papers
        assert report.inference_s == pytest.approx(closed.inference_s, rel=0.01)
        assert report.model_load_s == pytest.approx(closed.model_load_s, rel=0.01)
        # DES wall clock covers io + load + slowest GPU
        assert env.now == pytest.approx(
            report.io_s + report.model_load_s + report.inference_s, rel=0.05
        )
