"""SimGpu cost/memory model tests."""

import pytest

from repro.embed.gpu import CHARS_PER_TOKEN, GpuOutOfMemoryError, SimGpu
from repro.perfmodel.calibration import EMBEDDING


class TestCostModel:
    def test_calibrated_per_paper_time(self):
        """A 32 kchar (~8k token) paper must take Table 2's per-paper time."""
        gpu = SimGpu()
        t = gpu.inference_time_s(32_000)
        assert t == pytest.approx(EMBEDDING.inference_s_per_paper_per_gpu, rel=0.01)

    def test_time_linear_in_chars(self):
        gpu = SimGpu()
        assert gpu.inference_time_s(20_000) == pytest.approx(
            2 * gpu.inference_time_s(10_000)
        )

    def test_load_time_positive(self):
        gpu = SimGpu()
        assert 0 < gpu.load_time_s() < EMBEDDING.model_load_s

    def test_efficiency_plausible(self):
        gpu = SimGpu()
        assert 0.0 < gpu.efficiency < 1.0


class TestMemoryModel:
    def test_typical_batch_fits(self):
        gpu = SimGpu()
        # 8 papers of ~18.75 kchars: the heuristic's typical shape
        assert not gpu.would_oom([18_750] * 8)

    def test_skewed_batch_ooms(self):
        gpu = SimGpu()
        # one ~110 kchar monster with 7 short companions: padding blows up
        assert gpu.would_oom([110_000] + [5_000] * 7)

    def test_single_long_doc_fits_sequentially(self):
        gpu = SimGpu()
        assert not gpu.would_oom([150_000])

    def test_run_batch_raises_and_counts_oom(self):
        gpu = SimGpu()
        with pytest.raises(GpuOutOfMemoryError):
            gpu.run_batch([110_000] + [5_000] * 7)
        assert gpu.oom_events == 1

    def test_run_batch_accumulates_time(self):
        gpu = SimGpu()
        t = gpu.run_batch([10_000, 10_000])
        assert gpu.busy_s == pytest.approx(t)
        assert gpu.batches_run == 1

    def test_sequential_fallback_never_ooms(self):
        gpu = SimGpu()
        t = gpu.run_sequential([110_000] + [5_000] * 7)
        assert t > 0
        assert gpu.batches_run == 8

    def test_sequential_slower_than_batched(self):
        """The 25% per-paper launch overhead makes sequential slower."""
        batched = SimGpu()
        seq = SimGpu()
        chars = [10_000] * 8
        t_batch = batched.run_batch(chars)
        t_seq = seq.run_sequential(chars)
        assert t_seq > t_batch

    def test_free_memory_excludes_weights(self):
        gpu = SimGpu()
        assert gpu.free_memory_bytes == pytest.approx(40e9 - 8e9)

    def test_empty_batch(self):
        gpu = SimGpu()
        assert gpu.batch_memory_bytes([]) == 0.0
