"""HashingEmbedder tests: determinism, normalization, semantic locality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embed.model import QWEN3_EMBEDDING_4B, HashingEmbedder, tokenize


class TestTokenize:
    def test_lowercase_alnum(self):
        assert tokenize("Hello, World-42!") == ["hello", "world", "42"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("!!!") == []


class TestModelSpec:
    def test_qwen3_dims(self):
        assert QWEN3_EMBEDDING_4B.embedding_dim == 2560
        assert QWEN3_EMBEDDING_4B.weight_bytes == pytest.approx(8e9)
        assert QWEN3_EMBEDDING_4B.flops_per_token() == pytest.approx(8e9)


class TestHashingEmbedder:
    def test_dim_validation(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dim=1)

    def test_unit_norm(self):
        emb = HashingEmbedder(dim=128)
        v = emb.encode("genome sequencing of bacterial pathogens")
        assert np.isclose(np.linalg.norm(v), 1.0, atol=1e-5)
        assert v.dtype == np.float32

    def test_empty_text_zero_vector(self):
        emb = HashingEmbedder(dim=64)
        assert np.all(emb.encode("") == 0)

    def test_deterministic(self):
        a = HashingEmbedder(dim=128).encode("protein folding")
        b = HashingEmbedder(dim=128).encode("protein folding")
        assert np.array_equal(a, b)

    def test_seed_changes_embedding(self):
        a = HashingEmbedder(dim=128, seed=0).encode("protein folding")
        b = HashingEmbedder(dim=128, seed=1).encode("protein folding")
        assert not np.allclose(a, b)

    def test_semantic_locality(self):
        """Texts sharing vocabulary must be closer than unrelated texts."""
        emb = HashingEmbedder(dim=512)
        viral = "virus capsid replication influenza viral glycoprotein spike"
        viral2 = "influenza virus spike glycoprotein and capsid assembly"
        metab = "glycolysis metabolite flux citrate oxidation fermentation pathway"
        assert emb.similarity(viral, viral2) > emb.similarity(viral, metab)

    def test_self_similarity_is_one(self):
        emb = HashingEmbedder(dim=256)
        assert emb.similarity("gene expression", "gene expression") == pytest.approx(1.0, abs=1e-5)

    def test_encode_batch(self):
        emb = HashingEmbedder(dim=64)
        mat = emb.encode_batch(["a b c", "d e f", ""])
        assert mat.shape == (3, 64)
        assert np.array_equal(mat[0], emb.encode("a b c"))

    def test_encode_batch_empty(self):
        emb = HashingEmbedder(dim=64)
        assert emb.encode_batch([]).shape == (0, 64)

    def test_bigrams_affect_encoding(self):
        with_bi = HashingEmbedder(dim=256, use_bigrams=True)
        without = HashingEmbedder(dim=256, use_bigrams=False)
        text = "quorum sensing biofilm"
        assert not np.allclose(with_bi.encode(text), without.encode(text))

    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Nd"), max_codepoint=127),
                   max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_norm_is_zero_or_one(self, text):
        emb = HashingEmbedder(dim=64)
        norm = float(np.linalg.norm(emb.encode(text)))
        assert norm == pytest.approx(0.0, abs=1e-6) or norm == pytest.approx(1.0, abs=1e-4)

    def test_word_order_matters_with_bigrams(self):
        emb = HashingEmbedder(dim=512, use_bigrams=True)
        a = emb.encode("host pathogen interaction")
        b = emb.encode("interaction pathogen host")
        assert not np.allclose(a, b)
