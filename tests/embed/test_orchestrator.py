"""Adaptive orchestrator tests: submission policy, pause/resume, retarget."""

import pytest

from repro.embed.orchestrator import CampaignReport, Orchestrator, OrchestratorConfig
from repro.sim.engine import Environment
from repro.sim.scheduler import PbsScheduler


def setup(n_papers=12_000, queues=(("debug", 2), ("prod", 4)), **cfg_kwargs):
    env = Environment()
    sched = PbsScheduler(env)
    for name, nodes in queues:
        sched.add_queue(name, nodes)
    chars = [30_000] * n_papers
    config = OrchestratorConfig(**cfg_kwargs)
    orch = Orchestrator(
        env, sched, chars, target_queues=[q for q, _ in queues], config=config
    )
    return env, sched, orch


class TestCampaign:
    def test_completes_all_jobs(self):
        env, sched, orch = setup()
        report = env.run(orch.process)
        assert isinstance(report, CampaignReport)
        assert report.jobs_submitted == 3     # 12000 / 4000
        assert report.jobs_completed == 3
        assert report.papers_embedded == 12_000
        assert orch.done

    def test_respects_per_queue_cap(self):
        env, sched, orch = setup(n_papers=40_000, max_jobs_per_queue=1)
        max_seen = 0

        def monitor(env):
            nonlocal max_seen
            while not orch.done:
                for name in ("debug", "prod"):
                    q = sched.queue(name)
                    mine = len(q.running) + len(q.pending)
                    max_seen = max(max_seen, mine)
                yield env.timeout(10.0)

        env.process(monitor(env))
        env.run(orch.process)
        assert max_seen <= 1
        assert orch.report.jobs_completed == 10

    def test_makespan_benefits_from_parallel_queues(self):
        _, _, orch_two = setup(n_papers=24_000)
        env_two = orch_two.env
        env_two.run(orch_two.process)
        _, _, orch_one = setup(n_papers=24_000, queues=(("only", 1),),
                               max_jobs_per_queue=1)
        orch_one.env.run(orch_one.process)
        assert orch_two.report.makespan_s < orch_one.report.makespan_s

    def test_empty_campaign(self):
        env, _, orch = setup(n_papers=0)
        report = env.run(orch.process)
        assert report.jobs_submitted == 0
        assert orch.done


class TestControl:
    def test_requires_queue(self):
        env = Environment()
        sched = PbsScheduler(env)
        with pytest.raises(ValueError):
            Orchestrator(env, sched, [1], target_queues=[])

    def test_pause_stops_submission(self):
        env, sched, orch = setup(n_papers=40_000, max_jobs_per_queue=1)

        def controller(env):
            yield env.timeout(1.0)
            orch.pause()
            submitted_at_pause = orch.report.jobs_submitted
            yield env.timeout(10_000.0)
            assert orch.report.jobs_submitted == submitted_at_pause
            orch.resume()

        env.process(controller(env))
        env.run(orch.process)
        assert orch.report.jobs_completed == 10  # still finishes after resume

    def test_retarget_mid_campaign(self):
        env, sched, orch = setup(
            n_papers=40_000, queues=(("debug", 2), ("prod", 4), ("backfill", 4))
        )
        orch.retarget(["backfill"])

        def check(env):
            yield env.timeout(50.0)
            # all new work flows to backfill only
            assert len(sched.queue("backfill").running) > 0

        env.process(check(env))
        env.run(orch.process)
        assert orch.report.jobs_completed == 10

    def test_retarget_validation(self):
        env, _, orch = setup()
        with pytest.raises(ValueError):
            orch.retarget([])
        env.run(orch.process)

    def test_pending_chunks(self):
        env, _, orch = setup(n_papers=20_000)
        assert orch.pending_chunks <= 5
        env.run(orch.process)
        assert orch.pending_chunks == 0


class TestWalltimeRetries:
    def test_killed_jobs_are_resubmitted(self):
        """A walltime too short for a job triggers kill + bounded retries,
        ending with the chunks abandoned (not a hung campaign)."""
        env, sched, orch = setup(
            n_papers=8_000, queues=(("q", 2),),
            walltime_s=10.0,          # far below the ~2,400 s a job needs
            max_retries=1,
        )
        report = env.run(orch.process)
        assert orch.done
        assert report.jobs_completed == 0
        assert report.jobs_killed == 4          # 2 chunks x (1 try + 1 retry)
        assert report.chunks_abandoned == 2
        assert report.papers_embedded == 0

    def test_mixed_success_after_retry_budget(self):
        """With a generous walltime everything completes and no kills occur."""
        env, sched, orch = setup(n_papers=8_000, queues=(("q", 2),), max_retries=1)
        report = env.run(orch.process)
        assert report.jobs_killed == 0
        assert report.chunks_abandoned == 0
        assert report.jobs_completed == 2
