"""Batching-heuristic tests (§3.1), including hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embed.batching import BatchingConfig, batch_char_totals, heuristic_batches


class TestConfig:
    def test_paper_defaults(self):
        cfg = BatchingConfig()
        assert cfg.char_limit == 150_000
        assert cfg.max_papers == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchingConfig(char_limit=0)
        with pytest.raises(ValueError):
            BatchingConfig(max_papers=0)


class TestHeuristic:
    def test_empty_stream(self):
        assert list(heuristic_batches([])) == []

    def test_single_doc(self):
        assert list(heuristic_batches([100])) == [[100]]

    def test_max_papers_respected(self):
        batches = list(heuristic_batches([10] * 20))
        assert all(len(b) <= 8 for b in batches)
        assert sum(len(b) for b in batches) == 20

    def test_char_limit_respected(self):
        cfg = BatchingConfig(char_limit=100, max_papers=8)
        batches = list(heuristic_batches([40, 40, 40, 40], cfg))
        assert all(sum(b) <= 100 or len(b) == 1 for b in batches)
        assert batches == [[40, 40], [40, 40]]

    def test_oversized_doc_is_singleton(self):
        cfg = BatchingConfig(char_limit=100, max_papers=8)
        batches = list(heuristic_batches([50, 500, 50], cfg))
        assert [500] in batches
        assert sum(len(b) for b in batches) == 3

    def test_stream_order_preserved(self):
        docs = [10, 20, 30, 40, 50]
        flat = [c for b in heuristic_batches(docs, BatchingConfig(char_limit=60, max_papers=2))
                for c in b]
        assert flat == docs

    def test_negative_chars_rejected(self):
        with pytest.raises(ValueError):
            list(heuristic_batches([-1]))

    def test_batch_char_totals(self):
        batches = [[10, 20], [30]]
        assert batch_char_totals(batches) == [30, 30]

    def test_exact_fill_emits(self):
        cfg = BatchingConfig(char_limit=100, max_papers=8)
        batches = list(heuristic_batches([50, 50, 10], cfg))
        assert batches == [[50, 50], [10]]


@given(
    st.lists(st.integers(0, 200_000), max_size=100),
    st.integers(1, 200_000),
    st.integers(1, 16),
)
@settings(max_examples=60, deadline=None)
def test_heuristic_invariants(docs, char_limit, max_papers):
    """Every doc appears exactly once, in order; limits hold except for
    singleton oversized docs."""
    cfg = BatchingConfig(char_limit=char_limit, max_papers=max_papers)
    batches = list(heuristic_batches(docs, cfg))
    flat = [c for b in batches for c in b]
    assert flat == docs
    for batch in batches:
        assert batch, "no empty batches"
        assert len(batch) <= max_papers
        if len(batch) > 1:
            assert sum(batch) <= char_limit or sum(batch[:-1]) < char_limit
        # every multi-doc batch was admissible when its last doc was added
        if len(batch) > 1:
            assert sum(batch[:-1]) + batch[-1] == sum(batch)
