"""Skewed-workload generator tests."""

import numpy as np
import pytest

from repro.workloads.skew import SkewedQueryWorkload, zipf_weights
from repro.workloads.vocabulary import TOPICS


class TestZipfWeights:
    def test_normalised(self):
        assert zipf_weights(10, 1.0).sum() == pytest.approx(1.0)

    def test_uniform_at_zero(self):
        assert np.allclose(zipf_weights(5, 0.0), 0.2)

    def test_monotone_decreasing(self):
        w = zipf_weights(6, 1.3)
        assert np.all(np.diff(w) < 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)


class TestSkewedQueryWorkload:
    def test_deterministic(self):
        a = SkewedQueryWorkload(20, skew=1.0)
        b = SkewedQueryWorkload(20, skew=1.0)
        assert a.terms() == b.terms()

    def test_bounds(self):
        w = SkewedQueryWorkload(5)
        with pytest.raises(IndexError):
            w.term(5)
        with pytest.raises(ValueError):
            SkewedQueryWorkload(-1)

    def test_terms_use_topic_vocabulary(self):
        w = SkewedQueryWorkload(30, skew=1.5)
        from repro.workloads.vocabulary import BIOLOGY_TERMS

        all_terms = {t for words in BIOLOGY_TERMS.values() for t in words}
        for i in range(30):
            for word in w.term(i).split():
                assert word in all_terms

    def test_histogram_covers_all_queries(self):
        w = SkewedQueryWorkload(100, skew=1.0)
        hist = w.topic_histogram()
        assert sum(hist.values()) == 100
        assert set(hist) == set(TOPICS)

    def test_imbalance_monotone_in_skew(self):
        imb = [SkewedQueryWorkload(300, skew=s).imbalance() for s in (0.0, 1.0, 2.5)]
        assert imb[0] < imb[1] < imb[2]

    def test_zero_queries(self):
        w = SkewedQueryWorkload(0)
        assert len(w) == 0 and w.terms() == []
