"""Workload generator tests: peS2o corpus, BV-BRC terms, query building."""

import numpy as np
import pytest

from repro.embed.model import HashingEmbedder
from repro.perfmodel.calibration import DATASET
from repro.workloads import (
    BvBrcTerms,
    EmbeddedCorpus,
    Pes2oCorpus,
    QueryWorkload,
    gib_to_vectors,
    vectors_to_gib,
)
from repro.workloads.vocabulary import BIOLOGY_TERMS, TOPICS


class TestPes2oCorpus:
    def test_len_and_bounds(self):
        corpus = Pes2oCorpus(10)
        assert len(corpus) == 10
        with pytest.raises(IndexError):
            corpus.paper(10)
        with pytest.raises(ValueError):
            Pes2oCorpus(-1)

    def test_deterministic(self):
        a = Pes2oCorpus(5, seed=1).paper(3)
        b = Pes2oCorpus(5, seed=1).paper(3)
        assert a.text == b.text and a.title == b.title

    def test_seed_changes_content(self):
        a = Pes2oCorpus(5, seed=1).paper(0)
        b = Pes2oCorpus(5, seed=2).paper(0)
        assert a.text != b.text

    def test_char_count_matches_materialized(self):
        corpus = Pes2oCorpus(20, seed=3)
        for i in (0, 7, 19):
            # char_count is the *drawn* length; materialised text is close
            drawn = corpus.char_count(i)
            actual = corpus.paper(i).n_chars
            assert abs(actual - drawn) / drawn < 0.05

    def test_length_distribution(self):
        corpus = Pes2oCorpus(500, seed=4)
        chars = corpus.char_counts()
        assert 15_000 < np.median(chars) < 45_000   # full-text papers
        assert max(chars) <= corpus.max_chars
        assert min(chars) >= 500

    def test_topics_from_pool(self):
        corpus = Pes2oCorpus(30, seed=5)
        for i in range(30):
            topics = corpus.topics_of(i)
            assert topics and all(t in TOPICS for t in topics)
            assert topics == corpus.paper(i).topics

    def test_text_contains_topic_terms(self):
        corpus = Pes2oCorpus(5, seed=6)
        paper = corpus.paper(0)
        pool = {t for topic in paper.topics for t in BIOLOGY_TERMS[topic]}
        text_words = set(paper.text.lower().split())
        assert len(pool & text_words) >= 3

    def test_sample_ids(self):
        corpus = Pes2oCorpus(100)
        ids = corpus.sample_ids(10)
        assert len(ids) == 10 and len(set(ids.tolist())) == 10
        assert np.array_equal(ids, corpus.sample_ids(10))

    def test_iter(self):
        corpus = Pes2oCorpus(3)
        assert [p.paper_id for p in corpus] == [0, 1, 2]


class TestBvBrcTerms:
    def test_default_count_matches_paper(self):
        assert len(BvBrcTerms()) == 22_723

    def test_deterministic_and_bounded(self):
        terms = BvBrcTerms(50)
        assert terms.term(10) == BvBrcTerms(50).term(10)
        with pytest.raises(IndexError):
            terms.term(50)

    def test_term_structure(self):
        term = BvBrcTerms(10).term(0)
        assert "strain" in term
        assert len(term.split()) >= 5

    def test_terms_slice(self):
        terms = BvBrcTerms(20)
        assert terms.terms(5, 10) == [terms.term(i) for i in range(5, 10)]

    def test_iter(self):
        assert len(list(BvBrcTerms(7))) == 7


class TestQueryWorkload:
    def test_queries_embed(self):
        qw = QueryWorkload(BvBrcTerms(10), HashingEmbedder(dim=64))
        q = qw.query(0)
        assert q.vector.shape == (64,)
        assert np.isclose(np.linalg.norm(q.vector), 1.0, atol=1e-4)
        assert q.term_id == 0

    def test_vectors_matrix(self):
        qw = QueryWorkload(BvBrcTerms(10), HashingEmbedder(dim=64))
        mat = qw.vectors(0, 5)
        assert mat.shape == (5, 64)
        assert np.array_equal(mat[2], qw.query(2).vector)

    def test_empty_slice(self):
        qw = QueryWorkload(BvBrcTerms(3), HashingEmbedder(dim=32))
        assert qw.vectors(3, 3).shape == (0, 32)


class TestDatasetHelpers:
    def test_gib_vector_roundtrip(self):
        n = gib_to_vectors(1.0)
        assert n == 104_857  # 1 GiB at 2560 float32 dims
        assert vectors_to_gib(n) == pytest.approx(1.0, rel=0.001)

    def test_paper_scale(self):
        """8,293,485 x 2560 x 4B ≈ 79 GiB — the paper's '~80 GB'."""
        assert DATASET.total_gib == pytest.approx(79.1, abs=0.5)

    def test_embedded_corpus_points(self):
        corpus = Pes2oCorpus(5, seed=7)
        ec = EmbeddedCorpus(corpus, HashingEmbedder(dim=32))
        pts = ec.points()
        assert len(pts) == 5
        assert pts[2].id == 2
        assert pts[2].payload["title"] == corpus.paper(2).title
        assert pts[2].as_array().shape == (32,)

    def test_embedded_corpus_batches(self):
        corpus = Pes2oCorpus(7, seed=8)
        ec = EmbeddedCorpus(corpus, HashingEmbedder(dim=32))
        batches = list(ec.iter_points(batch_size=3))
        assert [len(b) for b in batches] == [3, 3, 1]

    def test_matrix(self):
        corpus = Pes2oCorpus(4, seed=9)
        ec = EmbeddedCorpus(corpus, HashingEmbedder(dim=32))
        assert ec.matrix().shape == (4, 32)
