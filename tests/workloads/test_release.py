"""Release-bundle tests (the paper's published-dataset contribution)."""

import json
import os

import numpy as np
import pytest

from repro.workloads.release import BundleError, export_bundle, load_bundle


@pytest.fixture(scope="module")
def bundle_dir(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("release") / "bundle")
    export_bundle(path, n_papers=30, n_queries=12, dim=64)
    return path


class TestExportLoad:
    def test_roundtrip(self, bundle_dir):
        bundle = load_bundle(bundle_dir)
        assert bundle.n_papers == 30
        assert bundle.n_queries == 12
        assert bundle.dim == 64
        assert bundle.embeddings.dtype == np.float32
        assert len(bundle.paper_meta) == 30
        assert bundle.query_terms[0]["term"]

    def test_deterministic_regeneration(self, bundle_dir, tmp_path):
        other = str(tmp_path / "again")
        export_bundle(other, n_papers=30, n_queries=12, dim=64)
        a = load_bundle(bundle_dir)
        b = load_bundle(other)
        assert np.array_equal(a.embeddings, b.embeddings)
        assert a.manifest["checksums"] == b.manifest["checksums"]

    def test_points_feed_database(self, bundle_dir):
        from repro.core import (
            Collection, CollectionConfig, Distance, OptimizerConfig,
            SearchRequest, VectorParams,
        )

        bundle = load_bundle(bundle_dir)
        col = Collection(
            CollectionConfig(
                "rel", VectorParams(size=bundle.dim, distance=Distance.COSINE),
                optimizer=OptimizerConfig(indexing_threshold=0),
            )
        )
        col.upsert(list(bundle.points()))
        assert len(col) == 30
        hits = col.search(SearchRequest(vector=bundle.queries[0], limit=5, with_payload=True))
        assert len(hits) == 5 and hits[0].payload["title"]

    def test_embeddings_are_unit_norm(self, bundle_dir):
        bundle = load_bundle(bundle_dir)
        norms = np.linalg.norm(bundle.embeddings, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-4)


class TestValidation:
    def test_missing_bundle(self, tmp_path):
        with pytest.raises(BundleError):
            load_bundle(str(tmp_path / "nope"))

    def test_checksum_detects_corruption(self, bundle_dir, tmp_path):
        import shutil

        broken = str(tmp_path / "broken")
        shutil.copytree(bundle_dir, broken)
        arr = np.load(os.path.join(broken, "embeddings.npy"))
        arr[0, 0] += 1.0
        np.save(os.path.join(broken, "embeddings.npy"), arr)
        with pytest.raises(BundleError, match="checksum"):
            load_bundle(broken)
        # but loads fine unverified
        assert load_bundle(broken, verify=False).n_papers == 30

    def test_manifest_count_mismatch(self, bundle_dir, tmp_path):
        import shutil

        broken = str(tmp_path / "counts")
        shutil.copytree(bundle_dir, broken)
        manifest = json.load(open(os.path.join(broken, "bundle.json")))
        manifest["n_papers"] = 999
        json.dump(manifest, open(os.path.join(broken, "bundle.json"), "w"))
        with pytest.raises(BundleError):
            load_bundle(broken)

    def test_bad_version(self, bundle_dir, tmp_path):
        import shutil

        broken = str(tmp_path / "ver")
        shutil.copytree(bundle_dir, broken)
        manifest = json.load(open(os.path.join(broken, "bundle.json")))
        manifest["format_version"] = 42
        json.dump(manifest, open(os.path.join(broken, "bundle.json"), "w"))
        with pytest.raises(BundleError):
            load_bundle(broken)
