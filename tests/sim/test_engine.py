"""DES engine tests: ordering, conditions, interrupts, failure propagation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_timeout_advances_clock(self):
        env = Environment()

        def proc(env):
            yield env.timeout(5.0)
            return env.now

        p = env.process(proc(env))
        assert env.run(p) == 5.0

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_run_until_time(self):
        env = Environment()
        fired = []

        def proc(env):
            yield env.timeout(10.0)
            fired.append(env.now)

        env.process(proc(env))
        env.run(until=5.0)
        assert fired == [] and env.now == 5.0
        env.run(until=20.0)
        assert fired == [10.0] and env.now == 20.0

    def test_run_backwards_rejected(self):
        env = Environment()
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(3.0)
        assert env.peek() == 3.0


class TestProcesses:
    def test_return_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            return "done"

        assert env.run(env.process(proc(env))) == "done"

    def test_sequential_timeouts(self):
        env = Environment()
        marks = []

        def proc(env):
            for d in (1.0, 2.0, 3.0):
                yield env.timeout(d)
                marks.append(env.now)

        env.process(proc(env))
        env.run()
        assert marks == [1.0, 3.0, 6.0]

    def test_process_waits_for_process(self):
        env = Environment()

        def inner(env):
            yield env.timeout(4)
            return 42

        def outer(env):
            value = yield env.process(inner(env))
            return (env.now, value)

        assert env.run(env.process(outer(env))) == (4.0, 42)

    def test_yield_non_event_raises(self):
        env = Environment()

        def bad(env):
            yield "not an event"

        env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_exception_propagates_to_waiter(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1)
            raise RuntimeError("boom")

        def waiter(env):
            try:
                yield env.process(failing(env))
            except RuntimeError as exc:
                return f"caught {exc}"

        assert env.run(env.process(waiter(env))) == "caught boom"

    def test_uncaught_failure_raises_from_run(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1)
            raise ValueError("unhandled")

        p = env.process(failing(env))
        with pytest.raises(ValueError):
            env.run(p)

    def test_waiting_on_processed_event(self):
        env = Environment()
        done = env.timeout(1.0, value="early")

        def late(env):
            yield env.timeout(5.0)
            value = yield done  # already processed by now
            return value

        assert env.run(env.process(late(env))) == "early"


class TestEvents:
    def test_succeed_value(self):
        env = Environment()
        ev = env.event()

        def trigger(env):
            yield env.timeout(2)
            ev.succeed("payload")

        def waiter(env):
            value = yield ev
            return (env.now, value)

        env.process(trigger(env))
        assert env.run(env.process(waiter(env))) == (2.0, "payload")

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_deadlock_detected(self):
        env = Environment()
        ev = env.event()  # never triggered

        def waiter(env):
            yield ev

        p = env.process(waiter(env))
        with pytest.raises(SimulationError):
            env.run(p)


class TestConditions:
    def test_all_of_barrier(self):
        env = Environment()

        def worker(env, d):
            yield env.timeout(d)
            return d

        procs = [env.process(worker(env, d)) for d in (3.0, 1.0, 2.0)]

        def main(env):
            results = yield AllOf(env, procs)
            return (env.now, sorted(results.values()))

        assert env.run(env.process(main(env))) == (3.0, [1.0, 2.0, 3.0])

    def test_any_of_first(self):
        env = Environment()

        def worker(env, d):
            yield env.timeout(d)
            return d

        procs = [env.process(worker(env, d)) for d in (3.0, 1.0)]

        def main(env):
            results = yield AnyOf(env, procs)
            return (env.now, list(results.values()))

        assert env.run(env.process(main(env))) == (1.0, [1.0])

    def test_all_of_empty(self):
        env = Environment()

        def main(env):
            results = yield AllOf(env, [])
            return results

        assert env.run(env.process(main(env))) == {}

    def test_timeout_in_condition_not_pre_fired(self):
        """Regression: Timeout carries a value from creation; conditions must
        not treat it as already fired."""
        env = Environment()

        def fast(env):
            yield env.timeout(1)
            return "fast"

        def main(env):
            body = env.process(fast(env))
            timer = env.timeout(100, value="timer")
            results = yield AnyOf(env, [body, timer])
            return list(results.values())

        assert env.run(env.process(main(env))) == ["fast"]

    def test_all_of_propagates_failure(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise RuntimeError("x")

        def ok(env):
            yield env.timeout(5)

        def main(env):
            try:
                yield AllOf(env, [env.process(bad(env)), env.process(ok(env))])
            except RuntimeError:
                return "failed"

        assert env.run(env.process(main(env))) == "failed"


class TestInterrupt:
    def test_interrupt_raises_inside(self):
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as i:
                return ("interrupted", i.cause, env.now)

        p = env.process(sleeper(env))

        def killer(env):
            yield env.timeout(2)
            p.interrupt("reason")

        env.process(killer(env))
        assert env.run(p) == ("interrupted", "reason", 2.0)

    def test_interrupt_dead_process_is_noop(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        p.interrupt()  # must not raise


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
@settings(max_examples=30, deadline=None)
def test_events_fire_in_time_order(delays):
    """Property: completion order is sorted by delay (ties by creation)."""
    env = Environment()
    order = []

    def proc(env, i, d):
        yield env.timeout(d)
        order.append((env.now, i))

    for i, d in enumerate(delays):
        env.process(proc(env, i, d))
    env.run()
    times = [t for t, _ in order]
    assert times == sorted(times)
    # ties broken by creation order
    for (t1, i1), (t2, i2) in zip(order, order[1:]):
        if t1 == t2:
            assert i1 < i2
