"""Resource / Container / Store tests."""

import pytest

from repro.sim.engine import Environment, SimulationError
from repro.sim.resources import Container, PriorityResource, Resource, Store


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Resource(Environment(), capacity=0)

    def test_fifo_queueing(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def worker(name, hold):
            req = res.request()
            yield req
            order.append((env.now, name))
            yield env.timeout(hold)
            res.release(req)

        for i in range(3):
            env.process(worker(f"w{i}", 2.0))
        env.run()
        assert order == [(0.0, "w0"), (2.0, "w1"), (4.0, "w2")]

    def test_concurrent_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        starts = []

        def worker(name):
            req = res.request()
            yield req
            starts.append((env.now, name))
            yield env.timeout(1.0)
            res.release(req)

        for i in range(4):
            env.process(worker(i))
        env.run()
        assert [t for t, _ in starts] == [0.0, 0.0, 1.0, 1.0]

    def test_release_without_request(self):
        env = Environment()
        res = Resource(env)
        with pytest.raises(SimulationError):
            res.release()

    def test_utilization(self):
        env = Environment()
        res = Resource(env, capacity=2)
        env.run(res.use(10.0))
        assert res.utilization() == pytest.approx(0.5)

    def test_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        res.request()
        assert res.queue_length == 1
        assert res.in_use == 1


class TestPriorityResource:
    def test_priority_order(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def worker(name, prio):
            req = res.request(priority=prio)
            yield req
            order.append(name)
            yield env.timeout(1.0)
            res.release(req)

        def submit(env):
            # occupy, then enqueue three waiters with different priorities
            first = res.request()
            yield first
            env.process(worker("low", 5))
            env.process(worker("high", 1))
            env.process(worker("mid", 3))
            yield env.timeout(1.0)
            res.release(first)

        env.process(submit(env))
        env.run()
        assert order == ["high", "mid", "low"]


class TestContainer:
    def test_validation(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Container(env, capacity=0)
        with pytest.raises(SimulationError):
            Container(env, capacity=1, init=2)
        c = Container(env, capacity=5)
        with pytest.raises(SimulationError):
            c.get(10)

    def test_put_get_blocking(self):
        env = Environment()
        c = Container(env, capacity=10)
        got = []

        def getter(env):
            amount = yield c.get(4)
            got.append((env.now, amount))

        def putter(env):
            yield env.timeout(3)
            yield c.put(4)

        env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert got == [(3.0, 4)]

    def test_put_blocks_at_capacity(self):
        env = Environment()
        c = Container(env, capacity=5, init=5)
        events = []

        def putter(env):
            yield c.put(3)
            events.append(env.now)

        def getter(env):
            yield env.timeout(2)
            yield c.get(3)

        env.process(putter(env))
        env.process(getter(env))
        env.run()
        assert events == [2.0]
        assert c.level == 5.0

    def test_atomic_get_no_interleave(self):
        """Two getters of 7 from a 10-capacity container must serialize,
        not deadlock (the SimNode core-pool regression)."""
        env = Environment()
        c = Container(env, capacity=10, init=10)
        done = []

        def taker(name):
            yield c.get(7)
            yield env.timeout(1)
            yield c.put(7)
            done.append((env.now, name))

        env.process(taker("a"))
        env.process(taker("b"))
        env.run()
        assert done == [(1.0, "a"), (2.0, "b")]


class TestStore:
    def test_fifo(self):
        env = Environment()
        store = Store(env)
        out = []

        def producer(env):
            for i in range(3):
                yield store.put(i)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                out.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert out == [0, 1, 2]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(5)
            yield store.put("x")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(5.0, "x")]

    def test_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer(env):
            for i in range(2):
                yield store.put(i)
                times.append(env.now)

        def consumer(env):
            yield env.timeout(4)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [0.0, 4.0]

    def test_len_and_items(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        env.run()
        assert len(store) == 2 and store.items == [1, 2]
