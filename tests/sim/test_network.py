"""Network model tests: link costs, Dragonfly routing, NIC contention."""

import pytest

from repro.sim.engine import Environment
from repro.sim.network import SLINGSHOT11, DragonflyTopology, LinkModel, SimNetwork


class TestLinkModel:
    def test_alpha_beta(self):
        link = LinkModel(latency_s=1e-6, bandwidth_Bps=1e9)
        assert link.transfer_time(0) == pytest.approx(1e-6)
        assert link.transfer_time(1e9) == pytest.approx(1.000001)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SLINGSHOT11.transfer_time(-1)

    def test_slingshot_constants(self):
        assert SLINGSHOT11.bandwidth_Bps == 25e9


class TestDragonfly:
    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            DragonflyTopology(n_groups=0)

    def test_terminal_count(self):
        topo = DragonflyTopology(n_groups=2, routers_per_group=3, terminals_per_router=4)
        assert topo.n_terminals == 24

    def test_locate(self):
        topo = DragonflyTopology(n_groups=2, routers_per_group=2, terminals_per_router=2)
        assert topo.locate(0) == (0, 0, 0)
        assert topo.locate(3) == (0, 1, 1)
        assert topo.locate(4) == (1, 0, 0)
        with pytest.raises(ValueError):
            topo.locate(8)

    def test_loopback_is_free(self):
        topo = DragonflyTopology()
        route = topo.route(3, 3)
        assert route.latency_s == 0.0
        assert topo.transfer_time(3, 3, 1e9) == 0.0

    def test_route_hierarchy_costs(self):
        """same-router < same-group < cross-group latency."""
        topo = DragonflyTopology(n_groups=2, routers_per_group=2, terminals_per_router=2)
        same_router = topo.route(0, 1).latency_s
        same_group = topo.route(0, 2).latency_s
        cross_group = topo.route(0, 4).latency_s
        assert same_router < same_group < cross_group

    def test_cross_group_bottleneck_is_global_link(self):
        topo = DragonflyTopology()
        route = topo.route(0, topo.n_terminals - 1)
        assert route.bottleneck_Bps == topo.global_link.bandwidth_Bps

    def test_transfer_time_dominated_by_bandwidth_for_big_messages(self):
        topo = DragonflyTopology()
        t = topo.transfer_time(0, 1, 25e9)  # 25 GB at 25 GB/s
        assert 0.9 < t < 1.1


class TestSimNetwork:
    def test_transfer_process(self):
        env = Environment()
        net = SimNetwork(env, DragonflyTopology())
        duration = env.run(net.transfer(0, 5, 1e6))
        assert duration > 0
        assert net.messages_sent == 1
        assert net.bytes_sent == 1_000_000

    def test_loopback_no_nic(self):
        env = Environment()
        net = SimNetwork(env, DragonflyTopology())
        env.run(net.transfer(2, 2, 1e6))
        assert net.messages_sent == 0  # loopback not counted as a message

    def test_nic_contention_serializes(self):
        env = Environment()
        net = SimNetwork(env, DragonflyTopology(), channels=1)
        size = 25e9  # 1 second per transfer
        p1 = net.transfer(0, 1, size)
        p2 = net.transfer(0, 2, size)
        env.run(env.all_of([p1, p2]))
        # both source transfers share terminal 0's single channel
        assert env.now == pytest.approx(2.0, rel=0.01)

    def test_parallel_channels(self):
        env = Environment()
        net = SimNetwork(env, DragonflyTopology(), channels=4)
        size = 25e9
        p1 = net.transfer(0, 1, size)
        p2 = net.transfer(0, 2, size)
        env.run(env.all_of([p1, p2]))
        assert env.now == pytest.approx(1.0, rel=0.01)
