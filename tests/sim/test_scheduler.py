"""PBS queue simulator tests: FIFO, backfill, walltime kills."""

import pytest

from repro.sim.engine import Environment
from repro.sim.scheduler import Job, JobState, PbsScheduler, Queue, WalltimeExceeded


def make(nodes=4):
    env = Environment()
    sched = PbsScheduler(env)
    queue = sched.add_queue("q", nodes)
    return env, sched, queue


class TestQueueBasics:
    def test_oversized_job_rejected(self):
        env, _, queue = make(nodes=2)
        with pytest.raises(ValueError):
            queue.submit(Job(nodes=3, walltime_s=10))

    def test_zero_node_queue_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Queue(env, "bad", 0)

    def test_duplicate_queue_name(self):
        env = Environment()
        sched = PbsScheduler(env)
        sched.add_queue("a", 1)
        with pytest.raises(ValueError):
            sched.add_queue("a", 1)

    def test_fifo_start_order(self):
        env, _, queue = make(nodes=2)
        jobs = [Job(nodes=2, walltime_s=100, runtime_s=5, name=f"j{i}") for i in range(3)]
        for j in jobs:
            queue.submit(j)
        env.run()
        assert [j.start_time for j in jobs] == [0.0, 5.0, 10.0]
        assert all(j.state == JobState.COMPLETED for j in jobs)

    def test_parallel_when_nodes_allow(self):
        env, _, queue = make(nodes=4)
        jobs = [Job(nodes=2, walltime_s=100, runtime_s=5) for _ in range(2)]
        for j in jobs:
            queue.submit(j)
        env.run()
        assert all(j.start_time == 0.0 for j in jobs)

    def test_queue_wait_recorded(self):
        env, _, queue = make(nodes=1)
        j1 = queue.submit(Job(nodes=1, walltime_s=100, runtime_s=7))
        j2 = queue.submit(Job(nodes=1, walltime_s=100, runtime_s=1))
        env.run()
        assert j1.queue_wait_s == 0.0
        assert j2.queue_wait_s == 7.0

    def test_available_nodes(self):
        env, _, queue = make(nodes=4)
        queue.submit(Job(nodes=3, walltime_s=100, runtime_s=10))
        env.run(until=1.0)
        assert queue.available_nodes() == 1


class TestBackfill:
    def test_narrow_job_backfills(self):
        env, _, queue = make(nodes=4)
        queue.submit(Job(nodes=3, walltime_s=100, runtime_s=20, name="head-runner"))
        blocked = queue.submit(Job(nodes=4, walltime_s=100, runtime_s=10, name="wide"))
        narrow = queue.submit(Job(nodes=1, walltime_s=15, runtime_s=15, name="narrow"))
        env.run()
        assert narrow.start_time == 0.0   # fits in the 1-node hole, ends by 15 <= 20
        assert blocked.start_time == 20.0

    def test_backfill_never_delays_head(self):
        env, _, queue = make(nodes=4)
        queue.submit(Job(nodes=3, walltime_s=100, runtime_s=20))
        blocked = queue.submit(Job(nodes=4, walltime_s=100, runtime_s=10))
        # this narrow job would outlive the reservation -> must NOT backfill
        long_narrow = queue.submit(Job(nodes=1, walltime_s=50, runtime_s=50))
        env.run()
        assert blocked.start_time == 20.0
        assert long_narrow.start_time >= 20.0


class TestWalltime:
    def test_runtime_job_killed(self):
        env, _, queue = make()
        j = queue.submit(Job(nodes=1, walltime_s=5, runtime_s=50))
        env.run()
        assert j.state == JobState.KILLED
        assert j.end_time == 5.0

    def test_body_job_killed_and_event_fails(self):
        env, _, queue = make()

        def body(env, job):
            yield env.timeout(1000)
            return "never"

        j = queue.submit(Job(nodes=1, walltime_s=10, body=body))
        caught = []

        def watcher(env):
            try:
                yield j.done_event
            except WalltimeExceeded:
                caught.append(env.now)

        env.process(watcher(env))
        env.run()
        assert j.state == JobState.KILLED
        assert caught == [10.0]

    def test_body_result_propagates(self):
        env, _, queue = make()

        def body(env, job):
            yield env.timeout(3)
            return {"answer": 42}

        j = queue.submit(Job(nodes=1, walltime_s=100, body=body))
        env.run()
        assert j.result == {"answer": 42}
        assert j.state == JobState.COMPLETED
        assert j.done_event.value == {"answer": 42}

    def test_nodes_freed_after_kill(self):
        env, _, queue = make(nodes=1)
        queue.submit(Job(nodes=1, walltime_s=5, runtime_s=100))
        second = queue.submit(Job(nodes=1, walltime_s=100, runtime_s=1))
        env.run()
        assert second.start_time == 5.0
        assert second.state == JobState.COMPLETED


class TestScheduler:
    def test_multi_queue(self):
        env = Environment()
        sched = PbsScheduler(env)
        sched.add_queue("debug", 2)
        sched.add_queue("prod", 8)
        assert sched.total_free_nodes() == 10
        sched.submit("prod", Job(nodes=8, walltime_s=10, runtime_s=10))
        env.run(until=1.0)
        assert sched.total_free_nodes() == 2
        assert sched.queue("debug").available_nodes() == 2
