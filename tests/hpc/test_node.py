"""Node model tests."""

import pytest

from repro.hpc.node import A100_40GB, POLARIS_NODE, NodeSpec, SimNode
from repro.sim.engine import Environment


class TestSpecs:
    def test_polaris_node_matches_paper(self):
        """§3: 32-core 2.8 GHz EPYC, 512 GB DDR4, 4x A100."""
        assert POLARIS_NODE.cpu_cores == 32
        assert POLARIS_NODE.cpu_ghz == 2.8
        assert POLARIS_NODE.memory_gb == pytest.approx(512.0)
        assert POLARIS_NODE.gpu_count == 4
        assert all(g is A100_40GB for g in POLARIS_NODE.gpus)

    def test_a100(self):
        assert A100_40GB.memory_gb == pytest.approx(40.0)
        assert A100_40GB.flops == 312e12


class TestSimNode:
    def test_full_node_compute(self):
        env = Environment()
        node = SimNode(env, POLARIS_NODE, "n0")
        env.run(node.compute(320.0))  # 320 core-seconds over 32 cores
        assert env.now == pytest.approx(10.0)

    def test_two_full_jobs_serialize(self):
        env = Environment()
        node = SimNode(env, POLARIS_NODE, "n0")
        p1 = node.compute(320.0)
        p2 = node.compute(320.0)
        env.run(env.all_of([p1, p2]))
        assert env.now == pytest.approx(20.0)
        assert node.cpu_utilization() == pytest.approx(1.0, abs=0.01)

    def test_half_width_jobs_overlap(self):
        env = Environment()
        node = SimNode(env, POLARIS_NODE, "n0")
        p1 = node.compute(160.0, parallelism=16)
        p2 = node.compute(160.0, parallelism=16)
        env.run(env.all_of([p1, p2]))
        assert env.now == pytest.approx(10.0)

    def test_parallelism_clamped_to_cores(self):
        env = Environment()
        node = SimNode(env, POLARIS_NODE, "n0")
        env.run(node.compute(32.0, parallelism=64))
        assert env.now == pytest.approx(1.0)

    def test_utilization_partial(self):
        env = Environment()
        node = SimNode(env, POLARIS_NODE, "n0")
        env.run(node.compute(16.0, parallelism=16))  # 16 cores for 1s
        env.run(until=2.0)
        assert node.cpu_utilization() == pytest.approx(0.25)

    def test_gpu_slots(self):
        env = Environment()
        node = SimNode(env, POLARIS_NODE, "n0")
        assert len(node.gpu_slots) == 4
        for slot in node.gpu_slots:
            assert slot.capacity == 1
