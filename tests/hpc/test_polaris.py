"""Polaris machine model tests."""

import pytest

from repro.hpc.polaris import WORKERS_PER_NODE, PolarisMachine
from repro.sim.engine import Environment


class TestPolarisMachine:
    def test_workers_per_node_constant(self):
        assert WORKERS_PER_NODE == 4  # §3.2 deployment

    def test_node_count_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            PolarisMachine(env, n_nodes=0)
        with pytest.raises(ValueError):
            PolarisMachine(env, n_nodes=1000)  # exceeds topology terminals

    def test_worker_placement(self):
        env = Environment()
        m = PolarisMachine(env, n_nodes=8)
        assert m.node_for_worker(0).node_id == "node-0"
        assert m.node_for_worker(3).node_id == "node-0"
        assert m.node_for_worker(4).node_id == "node-1"
        assert m.node_for_worker(31).node_id == "node-7"
        with pytest.raises(ValueError):
            m.node_for_worker(32)

    def test_nodes_for_workers(self):
        assert PolarisMachine.nodes_for_workers(1) == 1
        assert PolarisMachine.nodes_for_workers(4) == 1
        assert PolarisMachine.nodes_for_workers(5) == 2
        assert PolarisMachine.nodes_for_workers(32) == 8

    def test_transfer_between_nodes(self):
        env = Environment()
        m = PolarisMachine(env, n_nodes=4)
        duration = env.run(m.transfer(0, 3, 1e9))
        assert duration > 0
        # ~1 GB at ~25 GB/s: tens of milliseconds
        assert 0.01 < duration < 0.2

    def test_node_accessor(self):
        env = Environment()
        m = PolarisMachine(env, n_nodes=2)
        assert m.node(1).terminal == 1
