"""End-to-end biological RAG workflow (the paper's §3 pipeline, real code):

corpus generation → embedding → distributed insertion → deferred index
build → BV-BRC term queries, with retrieval-quality assertions (the
embedder must surface topically related papers).
"""

import numpy as np
import pytest

from repro.core import (
    CollectionConfig,
    Distance,
    OptimizerConfig,
    SearchRequest,
    VectorParams,
)
from repro.core.client import SyncClient
from repro.core.cluster import Cluster
from repro.embed.model import HashingEmbedder
from repro.workloads import BvBrcTerms, EmbeddedCorpus, Pes2oCorpus, QueryWorkload

DIM = 256
N_PAPERS = 120


@pytest.fixture(scope="module")
def pipeline():
    embedder = HashingEmbedder(dim=DIM)
    corpus = Pes2oCorpus(N_PAPERS, seed=11)
    embedded = EmbeddedCorpus(corpus, embedder)
    cluster = Cluster.with_workers(4)
    cluster.create_collection(
        CollectionConfig(
            "papers",
            VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(indexing_threshold=0),
        )
    )
    client = SyncClient(cluster, "papers")
    for batch in embedded.iter_points(batch_size=32):
        cluster.upsert("papers", batch)
    cluster.build_index("papers")   # deferred build, as in §3.3
    return embedder, corpus, cluster, client


class TestEndToEnd:
    def test_all_papers_inserted(self, pipeline):
        _, _, cluster, _ = pipeline
        assert cluster.count("papers") == N_PAPERS

    def test_index_built_everywhere(self, pipeline):
        _, _, cluster, _ = pipeline
        for info in cluster.info("papers"):
            assert info.indexed_vectors_count == info.points_count

    def test_self_retrieval(self, pipeline):
        """A paper's own text must retrieve that paper first."""
        embedder, corpus, cluster, _ = pipeline
        for pid in (0, 33, 77):
            q = embedder.encode(corpus.paper(pid).text)
            hits = cluster.search("papers", SearchRequest(vector=q, limit=3))
            assert hits[0].id == pid

    def test_topical_retrieval(self, pipeline):
        """Queries built from a paper's topic vocabulary should retrieve
        papers sharing that topic more often than chance."""
        embedder, corpus, cluster, _ = pipeline
        from repro.workloads.vocabulary import BIOLOGY_TERMS

        hits_on_topic = 0
        total = 0
        for topic in ("virology", "genomics", "immunology"):
            query_text = " ".join(BIOLOGY_TERMS[topic][:10])
            q = embedder.encode(query_text)
            hits = cluster.search(
                "papers", SearchRequest(vector=q, limit=5, with_payload=True)
            )
            for h in hits:
                total += 1
                if topic in h.payload["topics"]:
                    hits_on_topic += 1
        base_rate = sum(
            1 for i in range(N_PAPERS) for t in corpus.paper(i).topics
        ) / (N_PAPERS * len(("virology", "genomics", "immunology")))
        assert hits_on_topic / total > 0.4  # far above the ~25% base rate

    def test_bvbrc_term_queries_run(self, pipeline):
        embedder, _, cluster, client = pipeline
        workload = QueryWorkload(BvBrcTerms(32), embedder)
        results = client.search_many(workload.vectors(), limit=5, batch_size=16)
        assert len(results) == 32
        assert all(len(r) == 5 for r in results)
        # every result scored and sorted
        for hits in results:
            scores = [h.score for h in hits]
            assert scores == sorted(scores, reverse=True)
