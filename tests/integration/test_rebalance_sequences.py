"""Stateful property test: random membership-change sequences.

Hypothesis drives random sequences of worker additions and removals
against a replicated cluster; after every step, all data must remain
present, searchable, and identical to a never-rebalanced reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Collection,
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)
from repro.core.cluster import Cluster
from repro.core.errors import ClusterConfigError
from repro.core.worker import Worker

DIM = 8
N_POINTS = 60
RF = 2


def _points():
    rng = np.random.default_rng(7)
    return [
        PointStruct(id=i, vector=rng.normal(size=DIM), payload={"i": i})
        for i in range(N_POINTS)
    ]


@given(st.lists(st.sampled_from(["add", "remove"]), min_size=1, max_size=8))
@settings(max_examples=20, deadline=None)
def test_membership_churn_preserves_data(actions):
    points = _points()
    reference = Collection(
        CollectionConfig(
            "ref", VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(indexing_threshold=0),
        )
    )
    reference.upsert(points)

    cluster = Cluster.with_workers(3)
    cluster.create_collection(
        CollectionConfig(
            "c", VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(indexing_threshold=0),
            shard_number=4, replication_factor=RF,
        )
    )
    cluster.upsert("c", points)

    next_worker = 100
    query = np.random.default_rng(9).normal(size=DIM)
    expected = [h.id for h in reference.search(SearchRequest(vector=query, limit=10))]

    for action in actions:
        if action == "add":
            cluster.add_worker(Worker(f"fresh-{next_worker}"), rebalance=True)
            next_worker += 1
        else:
            if cluster.worker_count <= RF:
                # removal would violate the replication factor: must refuse
                victim = cluster.worker_ids[0]
                with pytest.raises(ClusterConfigError):
                    cluster.remove_worker(victim)
                continue
            cluster.remove_worker(cluster.worker_ids[0])

        # invariants after every membership change
        assert cluster.count("c") == N_POINTS
        plan = cluster.placement("c")
        live = set(cluster.worker_ids)
        for shard in range(plan.shard_number):
            holders = plan.workers_for(shard)
            assert len(holders) == RF
            assert set(holders) <= live
        got = [h.id for h in cluster.search("c", SearchRequest(vector=query, limit=10))]
        assert got == expected
        # spot-check a retrieval
        rec = cluster.retrieve("c", 31)
        assert rec.payload == {"i": 31}


def test_remove_below_replication_factor_is_atomic():
    """A refused removal must leave the cluster fully intact."""
    cluster = Cluster.with_workers(2)
    cluster.create_collection(
        CollectionConfig(
            "c", VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(indexing_threshold=0),
            replication_factor=2,
        )
    )
    cluster.upsert("c", _points())
    with pytest.raises(ClusterConfigError):
        cluster.remove_worker("worker-0")
    # nothing changed: both workers still serve, data intact
    assert cluster.worker_count == 2
    assert cluster.count("c") == N_POINTS
    hits = cluster.search("c", SearchRequest(vector=np.ones(DIM), limit=5))
    assert len(hits) == 5
