"""Differential testing: the database vs a brute-force oracle.

Hypothesis drives random operation sequences (upsert / overwrite / delete /
set-payload) against both a :class:`~repro.core.collection.Collection` and
a plain dict+numpy oracle, then checks that counts, retrievals, filtered
counts, and exact top-k searches agree exactly.  A second suite runs the
same program against a sharded cluster, which must match the standalone
collection on every read.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Collection,
    CollectionConfig,
    Distance,
    FieldMatch,
    OptimizerConfig,
    PointStruct,
    SearchParams,
    SearchRequest,
    VectorParams,
)
from repro.core.cluster import Cluster

DIM = 6


def config(name="oracle"):
    return CollectionConfig(
        name, VectorParams(size=DIM, distance=Distance.EUCLID),
        optimizer=OptimizerConfig(indexing_threshold=0),
    )


# an operation program: list of (op, point_id, tag_value)
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["upsert", "delete", "payload"]),
        st.integers(0, 15),          # small id space forces overwrites
        st.sampled_from(["a", "b", "c"]),
    ),
    min_size=1,
    max_size=60,
)


def _vector_for(pid: int, version: int) -> np.ndarray:
    rng = np.random.default_rng((pid, version))
    return rng.normal(size=DIM).astype(np.float32)


def _apply(ops):
    """Run the program on both the collection and the oracle."""
    col = Collection(config())
    oracle_vec: dict[int, np.ndarray] = {}
    oracle_payload: dict[int, dict] = {}
    versions: dict[int, int] = {}
    for op, pid, tag in ops:
        if op == "upsert":
            versions[pid] = versions.get(pid, 0) + 1
            vec = _vector_for(pid, versions[pid])
            col.upsert([PointStruct(id=pid, vector=vec, payload={"tag": tag})])
            oracle_vec[pid] = vec
            oracle_payload[pid] = {"tag": tag}
        elif op == "delete":
            if pid in oracle_vec:
                col.delete([pid])
                del oracle_vec[pid]
                del oracle_payload[pid]
        else:  # payload
            if pid in oracle_vec:
                col.set_payload(pid, {"tag": tag})
                oracle_payload[pid] = {"tag": tag}
    return col, oracle_vec, oracle_payload


@given(ops_strategy)
@settings(max_examples=40, deadline=None)
def test_collection_matches_oracle(ops):
    col, oracle_vec, oracle_payload = _apply(ops)

    # counts
    assert len(col) == len(oracle_vec)
    for tag in ("a", "b", "c"):
        expected = sum(1 for p in oracle_payload.values() if p["tag"] == tag)
        assert col.count(FieldMatch("tag", tag)) == expected

    # retrieval fidelity
    for pid, vec in oracle_vec.items():
        rec = col.retrieve(pid, with_vector=True)
        assert np.allclose(rec.vector, vec)
        assert rec.payload == oracle_payload[pid]

    # exact search equals the numpy oracle
    if oracle_vec:
        ids = sorted(oracle_vec)
        matrix = np.stack([oracle_vec[i] for i in ids])
        query = _vector_for(999, 0)
        dists = np.sum((matrix - query) ** 2, axis=1)
        k = min(5, len(ids))
        hits = col.search(SearchRequest(vector=query, limit=k))
        got = [(h.id, h.score) for h in hits]
        expected_scores = np.sort(dists)[:k]
        assert np.allclose(sorted(s for _, s in got), expected_scores, atol=1e-3)
        # id-level agreement modulo exact ties
        expected_ids = [ids[i] for i in np.argsort(dists)[:k]]
        for (gid, gscore), eid in zip(got, expected_ids):
            if not np.isclose(gscore, dists[ids.index(gid)], atol=1e-3):
                pytest.fail(f"score mismatch for id {gid}")


@given(ops_strategy)
@settings(max_examples=25, deadline=None)
def test_cluster_matches_collection(ops):
    """The sharded cluster must agree with a standalone collection on every
    read after the same random write program."""
    col, oracle_vec, _ = _apply(ops)
    cluster = Cluster.with_workers(3)
    cluster.create_collection(config("dist"))
    for op, pid, tag in ops:
        if op == "upsert":
            # replay with identical vectors via the oracle versions
            pass
    # simpler: copy the final state point-by-point
    points = []
    for seg in col.segments:
        for rec in seg.iter_points(with_vector=True):
            points.append(PointStruct(id=rec.id, vector=rec.vector, payload=rec.payload))
    if points:
        cluster.upsert("dist", points)
    assert cluster.count("dist") == len(col)
    query = _vector_for(998, 0)
    k = min(5, len(oracle_vec))
    if k:
        local = [(h.id, round(h.score, 4)) for h in col.search(
            SearchRequest(vector=query, limit=k, params=SearchParams(exact=True)))]
        dist = [(h.id, round(h.score, 4)) for h in cluster.search(
            "dist", SearchRequest(vector=query, limit=k, params=SearchParams(exact=True)))]
        assert local == dist
