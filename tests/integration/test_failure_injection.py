"""Failure-injection integration tests: worker death, flaky transport,
WAL crash recovery, OOM fallback under the full pipeline."""

import numpy as np
import pytest

from repro.core import (
    Collection,
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
    WalConfig,
)
from repro.core.cluster import Cluster
from repro.core.errors import TransportError, WorkerUnavailableError
from repro.core.transport import FaultInjectingTransport, LocalTransport
from repro.core.worker import Worker

DIM = 16


def points(n, seed=0):
    rng = np.random.default_rng(seed)
    return [PointStruct(id=i, vector=rng.normal(size=DIM), payload={"i": i})
            for i in range(n)]


def config(**kwargs):
    return CollectionConfig(
        "c", VectorParams(size=DIM, distance=Distance.COSINE),
        optimizer=OptimizerConfig(indexing_threshold=0), **kwargs,
    )


class TestWorkerDeath:
    def test_replicated_cluster_survives_one_death(self):
        inner = LocalTransport()
        transport = FaultInjectingTransport(inner)
        cluster = Cluster(transport)
        for i in range(4):
            cluster.add_worker(Worker(f"w{i}"))
        cluster.create_collection(config(replication_factor=2))
        cluster.upsert("c", points(200))
        q = np.random.default_rng(1).normal(size=DIM)
        baseline = [h.id for h in cluster.search("c", SearchRequest(vector=q, limit=10))]
        for victim in ("w0", "w3"):
            transport.fail_worker(victim)
            got = [h.id for h in cluster.search("c", SearchRequest(vector=q, limit=10))]
            assert got == baseline
            transport.heal_worker(victim)

    def test_graceful_removal_then_requery(self):
        cluster = Cluster.with_workers(4)
        cluster.create_collection(config())
        cluster.upsert("c", points(200))
        q = np.random.default_rng(2).normal(size=DIM)
        baseline = [h.id for h in cluster.search("c", SearchRequest(vector=q, limit=10))]
        cluster.remove_worker("worker-0")
        cluster.remove_worker("worker-3")
        assert cluster.worker_count == 2
        got = [h.id for h in cluster.search("c", SearchRequest(vector=q, limit=10))]
        assert got == baseline
        assert cluster.count("c") == 200

    def test_remove_unknown_worker(self):
        cluster = Cluster.with_workers(2)
        with pytest.raises(WorkerUnavailableError):
            cluster.remove_worker("ghost")


class TestFlakyTransport:
    def test_client_can_retry_through_faults(self):
        inner = LocalTransport()
        transport = FaultInjectingTransport(inner, fail_every=5)
        cluster = Cluster(transport)
        cluster.add_worker(Worker("w0"))
        cluster.create_collection(config())
        pts = points(60)
        uploaded = 0
        for start in range(0, 60, 10):
            batch = pts[start : start + 10]
            for attempt in range(3):
                try:
                    cluster.upsert("c", batch)
                    uploaded += len(batch)
                    break
                except TransportError:
                    continue
            else:
                pytest.fail("batch failed after retries")
        # upserts are idempotent, so retried batches must not duplicate
        assert cluster.count("c") == 60


class TestWalCrashRecovery:
    def test_recovery_after_torn_write(self, tmp_path):
        path = str(tmp_path / "c.wal")
        cfg = config(wal=WalConfig(enabled=True, path=path))
        col = Collection(cfg)
        pts = points(50)
        for start in range(0, 50, 10):   # several WAL records
            col.upsert(pts[start : start + 10])
        col.close()
        # simulate a crash mid-append: truncate a few bytes off the tail
        import os

        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 4)
        revived = Collection(cfg)
        # the torn record is lost; everything before it survives
        assert 0 < len(revived) <= 50
        assert revived.contains(0)
        revived.close()


class TestOomFallbackPipeline:
    def test_campaign_with_forced_ooms(self):
        """A corpus with adversarial doc-length skew still completes, with
        the OOM batches processed sequentially."""
        from repro.embed.pipeline import job_report

        # alternate tiny docs with monsters so padded batches overflow
        chars = ([4_000] * 7 + [120_000]) * 25
        report = job_report(chars, n_gpus=2)
        assert report.oom_batches > 0
        assert report.sequential_papers > 0
        assert report.papers == 200
        assert report.inference_s > 0
