"""Distributed snapshot tests: save/restore, re-sharding, corruption."""

import json
import os

import numpy as np
import pytest

from repro.core import (
    CollectionConfig,
    Distance,
    OptimizerConfig,
    PointStruct,
    SearchRequest,
    VectorParams,
)
from repro.core.cluster import Cluster
from repro.core.cluster_snapshot import load_cluster_snapshot, save_cluster_snapshot
from repro.core.errors import SnapshotError

DIM = 12


def config(name="c"):
    return CollectionConfig(
        name, VectorParams(size=DIM, distance=Distance.COSINE),
        optimizer=OptimizerConfig(indexing_threshold=0),
    )


def populated_cluster(n_workers=4, n_points=120):
    cluster = Cluster.with_workers(n_workers)
    cluster.create_collection(config())
    rng = np.random.default_rng(0)
    cluster.upsert("c", [
        PointStruct(id=i, vector=rng.normal(size=DIM), payload={"i": i})
        for i in range(n_points)
    ])
    return cluster


class TestRoundtrip:
    def test_same_size_cluster(self, tmp_path):
        cluster = populated_cluster()
        path = save_cluster_snapshot(cluster, "c", str(tmp_path / "snap"))
        fresh = Cluster.with_workers(4)
        name = load_cluster_snapshot(fresh, path)
        assert name == "c"
        assert fresh.count("c") == 120
        q = np.random.default_rng(1).normal(size=DIM)
        orig = [h.id for h in cluster.search("c", SearchRequest(vector=q, limit=10))]
        restored = [h.id for h in fresh.search("c", SearchRequest(vector=q, limit=10))]
        assert orig == restored

    def test_resharding_to_more_workers(self, tmp_path):
        cluster = populated_cluster(n_workers=2)
        path = save_cluster_snapshot(cluster, "c", str(tmp_path / "snap"))
        bigger = Cluster.with_workers(8)
        load_cluster_snapshot(bigger, path)
        assert bigger.count("c") == 120
        assert bigger.placement("c").shard_number == 8
        rec = bigger.retrieve("c", 77, with_vector=True)
        orig = cluster.retrieve("c", 77, with_vector=True)
        assert np.allclose(rec.vector, orig.vector)

    def test_rename_on_restore(self, tmp_path):
        cluster = populated_cluster()
        path = save_cluster_snapshot(cluster, "c", str(tmp_path / "snap"))
        fresh = Cluster.with_workers(2)
        name = load_cluster_snapshot(fresh, path, name="c-restored")
        assert name == "c-restored"
        assert fresh.count("c-restored") == 120

    def test_snapshot_via_alias(self, tmp_path):
        cluster = populated_cluster()
        cluster.create_alias("current", "c")
        path = save_cluster_snapshot(cluster, "current", str(tmp_path / "snap"))
        manifest = json.load(open(os.path.join(path, "manifest.json")))
        assert manifest["collection"] == "c"


class TestPlacement:
    def test_manifest_records_placement(self, tmp_path):
        cluster = populated_cluster()
        path = save_cluster_snapshot(cluster, "c", str(tmp_path / "snap"))
        manifest = json.load(open(os.path.join(path, "manifest.json")))
        plan = cluster.placement("c")
        assert set(manifest["worker_ids"]) == set(plan.worker_ids)
        assert manifest["replication_factor"] == plan.replication_factor
        assert sorted(int(s) for s in manifest["placement"]) == list(
            range(plan.shard_number)
        )

    def test_same_worker_set_restores_exact_layout(self, tmp_path):
        cluster = populated_cluster()
        path = save_cluster_snapshot(cluster, "c", str(tmp_path / "snap"))
        fresh = Cluster.with_workers(4)
        load_cluster_snapshot(fresh, path)
        orig, restored = cluster.placement("c"), fresh.placement("c")
        assert restored.shard_number == orig.shard_number
        assert restored.assignments == orig.assignments

    def test_restore_onto_smaller_cluster_clamps_replication(self, tmp_path):
        cluster = Cluster.with_workers(4)
        cfg = CollectionConfig(
            "c", VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(indexing_threshold=0),
            replication_factor=2,
        )
        cluster.create_collection(cfg)
        rng = np.random.default_rng(0)
        cluster.upsert("c", [
            PointStruct(id=i, vector=rng.normal(size=DIM), payload={"i": i})
            for i in range(120)
        ])
        path = save_cluster_snapshot(cluster, "c", str(tmp_path / "snap"))
        # A 1-worker cluster cannot honour rf=2: the restore degrades to
        # rf=1 instead of failing.
        small = Cluster.with_workers(1)
        load_cluster_snapshot(small, path)
        assert small.count("c") == 120
        assert small.placement("c").replication_factor == 1


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_cluster_snapshot(Cluster.with_workers(1), str(tmp_path / "none"))

    def test_bad_version(self, tmp_path):
        cluster = populated_cluster()
        path = save_cluster_snapshot(cluster, "c", str(tmp_path / "snap"))
        manifest_path = os.path.join(path, "manifest.json")
        manifest = json.load(open(manifest_path))
        manifest["format_version"] = 99
        json.dump(manifest, open(manifest_path, "w"))
        with pytest.raises(SnapshotError):
            load_cluster_snapshot(Cluster.with_workers(1), path)

    def test_manifest_count_mismatch(self, tmp_path):
        cluster = populated_cluster()
        path = save_cluster_snapshot(cluster, "c", str(tmp_path / "snap"))
        manifest_path = os.path.join(path, "manifest.json")
        manifest = json.load(open(manifest_path))
        manifest["points_per_shard"]["0"] = 9999
        json.dump(manifest, open(manifest_path, "w"))
        with pytest.raises(SnapshotError):
            load_cluster_snapshot(Cluster.with_workers(2), path)
