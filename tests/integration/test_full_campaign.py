"""Full-campaign integration: embedding orchestrator on the queue simulator
feeding a distributed insertion + query phase — the paper's complete §3
workflow in one (scaled-down) run, plus a snapshot round-trip of the
distributed collection."""

import numpy as np

from repro.core import (
    Collection,
    CollectionConfig,
    Distance,
    OptimizerConfig,
    SearchRequest,
    VectorParams,
    load_snapshot,
    save_snapshot,
)
from repro.core.cluster import Cluster
from repro.core.mpclient import ParallelClientPool
from repro.embed.model import HashingEmbedder
from repro.embed.orchestrator import Orchestrator, OrchestratorConfig
from repro.sim.engine import Environment
from repro.sim.scheduler import PbsScheduler
from repro.workloads import BvBrcTerms, EmbeddedCorpus, Pes2oCorpus, QueryWorkload

DIM = 128


def test_campaign_then_database_then_queries(tmp_path):
    # Phase 1 (§3.1): embedding campaign through the PBS queues (simulated
    # time), over the same synthetic corpus we then actually embed.
    corpus = Pes2oCorpus(200, seed=21)
    env = Environment()
    sched = PbsScheduler(env)
    sched.add_queue("debug", 2)
    orch = Orchestrator(
        env, sched, corpus.char_counts(),
        target_queues=["debug"],
        config=OrchestratorConfig(papers_per_job=50, poll_interval_s=5.0),
    )
    campaign = env.run(orch.process)
    assert campaign.jobs_completed == 4
    assert campaign.papers_embedded == 200
    assert campaign.sequential_rate < 0.01

    # Phase 2 (§3.2): real embeddings into a distributed cluster with one
    # client per worker.
    embedder = HashingEmbedder(dim=DIM)
    embedded = EmbeddedCorpus(corpus, embedder)
    cluster = Cluster.with_workers(4)
    cluster.create_collection(
        CollectionConfig(
            "papers", VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(indexing_threshold=0),
        )
    )
    pool = ParallelClientPool(cluster, "papers")
    report = pool.upload(embedded.points(), batch_size=32)
    assert report.points == 200
    assert cluster.count("papers") == 200

    # Phase 3 (§3.3): deferred index build on every shard.
    built = cluster.build_index("papers")
    assert sum(sum(v) for v in built.values()) == 200

    # Phase 4 (§3.4): BV-BRC term queries, broadcast–reduce.
    workload = QueryWorkload(BvBrcTerms(16), embedder)
    results = cluster.search_batch(
        "papers",
        [SearchRequest(vector=v, limit=5) for v in workload.vectors()],
    )
    assert len(results) == 16 and all(len(r) == 5 for r in results)

    # Phase 5: snapshot one shard's collection and restore it elsewhere.
    worker = cluster.workers()[0]
    shard_id = worker.shard_ids("papers")[0]
    shard_collection = worker._shards[("papers", shard_id)]
    snap_dir = str(tmp_path / "shard-snap")
    save_snapshot(shard_collection, snap_dir)
    restored = load_snapshot(snap_dir)
    assert len(restored) == len(shard_collection)
    if len(restored):
        some_id = restored.scroll(limit=1)[0][0].id
        orig = shard_collection.retrieve(some_id, with_vector=True)
        copy = restored.retrieve(some_id, with_vector=True)
        assert np.allclose(orig.vector, copy.vector)


def test_distributed_matches_standalone_after_full_pipeline():
    """The distributed answer must equal a standalone collection's answer
    on the identical corpus — broadcast–reduce correctness end-to-end."""
    embedder = HashingEmbedder(dim=DIM)
    corpus = Pes2oCorpus(150, seed=22)
    embedded = EmbeddedCorpus(corpus, embedder)
    pts = embedded.points()

    single = Collection(
        CollectionConfig(
            "solo", VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(indexing_threshold=0),
        )
    )
    single.upsert(pts)

    cluster = Cluster.with_workers(8)
    cluster.create_collection(
        CollectionConfig(
            "papers", VectorParams(size=DIM, distance=Distance.COSINE),
            optimizer=OptimizerConfig(indexing_threshold=0),
        )
    )
    cluster.upsert("papers", pts)

    workload = QueryWorkload(BvBrcTerms(12), embedder)
    for q in workload.queries():
        expected = [h.id for h in single.search(SearchRequest(vector=q.vector, limit=10))]
        got = [h.id for h in cluster.search("papers", SearchRequest(vector=q.vector, limit=10))]
        assert got == expected
