"""Every table/figure experiment must regenerate with all shape checks green."""

import pytest

from repro.bench import EXPERIMENTS, run_experiment
from repro.bench.report import ExperimentResult


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_checks_pass(experiment_id):
    result = run_experiment(experiment_id)
    assert isinstance(result, ExperimentResult)
    assert result.rows, "experiment produced no rows"
    failing = [name for name, ok in result.checks.items() if not ok]
    assert not failing, f"{experiment_id} failing checks: {failing}\n{result.render()}"


def test_unknown_experiment():
    with pytest.raises(KeyError):
        run_experiment("table99")


def test_all_seven_paper_artifacts_covered():
    """The paper's evaluation has 3 tables and 4 figures (fig 1 is schematic)."""
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table3", "figure2", "figure3", "figure4", "figure5",
    }


def test_render_is_printable():
    result = run_experiment("table1")
    text = result.render()
    assert "table1" in text and "PASS" in text
