"""CLI (`python -m repro.bench`) tests."""

import json

import pytest

from repro.bench.__main__ import main


def test_single_experiment(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "PASS" in out


def test_json_output(capsys):
    assert main(["--json", "table1", "figure4"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [e["experiment_id"] for e in payload] == ["table1", "figure4"]
    assert all(e["all_checks_pass"] for e in payload)
    assert payload[0]["rows"]


def test_unknown_experiment():
    with pytest.raises(KeyError):
        main(["tableXX"])
