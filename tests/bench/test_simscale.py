"""DES paper-scale simulations must agree with the closed-form models."""

import pytest

from repro.bench.simscale import (
    simulate_index_build,
    simulate_insertion,
    simulate_query_phase,
)
from repro.perfmodel.indexing import IndexBuildModel
from repro.perfmodel.insertion import WorkerScalingModel
from repro.perfmodel.query import QueryScalingModel


class TestSimInsertion:
    @pytest.mark.parametrize("workers", [1, 4, 8, 32])
    def test_matches_closed_form(self, workers):
        sim = simulate_insertion(workers, max_sim_batches=100)
        model = WorkerScalingModel().time_s(workers)
        assert sim == pytest.approx(model, rel=0.05)

    def test_subset_scaling(self):
        sim_small = simulate_insertion(4, dataset_gib=1.0, max_sim_batches=100)
        sim_big = simulate_insertion(4, dataset_gib=2.0, max_sim_batches=100)
        assert sim_big == pytest.approx(2 * sim_small, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_insertion(0)


class TestSimIndexBuild:
    @pytest.mark.parametrize("workers", [1, 4, 8, 16, 32])
    def test_matches_closed_form(self, workers):
        sim = simulate_index_build(workers)
        model = IndexBuildModel().time_s(workers)
        assert sim == pytest.approx(model, rel=0.02)

    def test_packing_serializes_on_node(self):
        """4 workers on one node take ~4x one worker's per-shard time."""
        t4 = simulate_index_build(4, dataset_gib=40.0)
        model = IndexBuildModel()
        per_shard = model.shard_build_s(
            model.data.vectors_for_gib(40.0) / 4
        ) * model.cal.kappa_pack
        assert t4 == pytest.approx(4 * per_shard, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_index_build(0)


class TestSimQueryPhase:
    @pytest.mark.parametrize("workers", [1, 4, 8, 32])
    def test_matches_closed_form_at_full_size(self, workers):
        sim = simulate_query_phase(workers, dataset_gib=79.09)
        model = QueryScalingModel().time_s(workers, 79.09)
        assert sim == pytest.approx(model, rel=0.02)

    def test_small_dataset_overhead_dominates(self):
        """The DES reproduces Figure 5's small-data regime: distribution
        hurts below the crossover."""
        single = simulate_query_phase(1, dataset_gib=10.0)
        distributed = simulate_query_phase(4, dataset_gib=10.0)
        assert distributed > single

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_query_phase(0, dataset_gib=1.0)
