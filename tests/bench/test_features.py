"""Table 1 system-survey data tests (§2.2 claims)."""

from repro.systems import SYSTEMS, Support, feature_matrix, systems_with


class TestSupport:
    def test_symbols(self):
        assert Support.YES.symbol == "+"
        assert Support.NO.symbol == "x"
        assert Support.PARTIAL.symbol == "~"

    def test_truthiness(self):
        assert Support.YES and Support.PARTIAL
        assert not Support.NO


class TestSurvey:
    def test_five_systems(self):
        assert [s.name for s in SYSTEMS] == ["Vespa", "Vald", "Weaviate", "Qdrant", "Milvus"]

    def test_compute_storage_separation_claim(self):
        """§2.2: 'only a subset — Vespa and Milvus — support compute-storage
        separation'."""
        assert systems_with("compute_storage_separation") == ["Vespa", "Milvus"]

    def test_gpu_claim(self):
        """§2.2: 'only Vald, Weaviate, and Milvus support both GPU-accelerated
        indexing and ANN search'."""
        both = set(systems_with("gpu_indexing")) & set(systems_with("gpu_ann"))
        assert both == {"Vald", "Weaviate", "Milvus"}

    def test_qdrant_row_matches_table1(self):
        qdrant = next(s for s in SYSTEMS if s.name == "Qdrant")
        assert qdrant.parallel_read_write is Support.YES
        assert qdrant.compute_storage_separation is Support.NO
        assert qdrant.gpu_indexing is Support.YES
        assert qdrant.gpu_ann is Support.NO
        assert qdrant.architecture == "stateful"

    def test_architectures_match_figure1(self):
        """Stateful: Qdrant, Vald, Weaviate; stateless: Vespa, Milvus (§2.1)."""
        stateful = {s.name for s in SYSTEMS if s.architecture == "stateful"}
        assert stateful == {"Qdrant", "Vald", "Weaviate"}

    def test_matrix_shape(self):
        rows = feature_matrix()
        assert len(rows) == 5 and all(len(r) == 7 for r in rows)
        symbols = {cell for row in rows for cell in row[1:]}
        assert symbols <= {"+", "x", "~"}
