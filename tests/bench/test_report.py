"""Report rendering helpers."""

import math

from repro.bench.report import ExperimentResult, format_duration, pct_delta, render_table


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(42.0) == "42.0 s"

    def test_minutes(self):
        assert format_duration(1800.0) == "30.00 m"

    def test_hours(self):
        assert format_duration(3600.0 * 8.22) == "8.22 h"

    def test_nan(self):
        assert format_duration(float("nan")) == "-"


class TestPctDelta:
    def test_signed(self):
        assert pct_delta(110, 100) == "+10.0%"
        assert pct_delta(90, 100) == "-10.0%"

    def test_zero_reference(self):
        assert pct_delta(1, 0) == "-"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bbbb"], [["x", 1], ["yyyyyy", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_contains_cells(self):
        out = render_table(["h"], [["cell"]])
        assert "cell" in out and "h" in out


class TestExperimentResult:
    def test_checks(self):
        r = ExperimentResult("x", "t", ["h"])
        assert r.check("ok", True)
        assert not r.check("bad", 0)
        assert not r.all_checks_pass
        assert r.checks == {"ok": True, "bad": False}

    def test_render_includes_notes(self):
        r = ExperimentResult("x", "t", ["h"], rows=[["v"]], notes=["hello note"])
        assert "hello note" in r.render()
