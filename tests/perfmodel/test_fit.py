"""Numerical fits must agree with the closed-form calibration constants."""

import pytest

from repro.perfmodel.calibration import INDEXING, INSERTION, QUERY
from repro.perfmodel.fit import (
    fit_client_contention,
    fit_indexing_exponents,
    fit_insertion_batch_curve,
    fit_query_await_exponent,
    fit_shard_cost_ratio,
)


def test_batch_curve_fit_matches_closed_form():
    a_n, c_n, d_n = fit_insertion_batch_curve()
    a, c, d = INSERTION.batch_curve
    assert a_n == pytest.approx(a, rel=1e-6)
    assert c_n == pytest.approx(c, rel=1e-6)
    assert d_n == pytest.approx(d, rel=1e-6)


def test_client_contention_fit():
    gamma = fit_client_contention()
    # the hardcoded constant is the rounded least-squares value
    assert gamma == pytest.approx(INSERTION.client_contention, abs=0.003)
    # and it actually fits Table 3 within a few percent
    from repro.perfmodel.insertion import WorkerScalingModel

    model = WorkerScalingModel()
    for w, hours in zip(INSERTION.table3_workers, INSERTION.table3_hours):
        assert model.time_s(w) == pytest.approx(hours * 3600.0, rel=0.05)


def test_indexing_exponents_fit():
    beta, kappa = fit_indexing_exponents()
    assert beta == pytest.approx(INDEXING.beta, rel=1e-6)
    assert kappa == pytest.approx(INDEXING.kappa_pack, rel=1e-6)


def test_query_await_exponent_fit():
    p = fit_query_await_exponent()
    # the module uses 1.25; the least-squares optimum is within a few percent
    assert p == pytest.approx(QUERY.await_exponent, abs=0.06)


def test_shard_cost_ratio_fit():
    ratio = fit_shard_cost_ratio()
    assert ratio == pytest.approx(QUERY.shard_cost_ratio, rel=1e-6)
