"""Calibration tests: every number the paper reports must fall out of the
models within stated tolerance.  Each test cites its paper anchor."""

import math

import pytest

from repro.perfmodel.calibration import (
    DATASET,
    EMBEDDING,
    INDEXING,
    INSERTION,
    QUERY,
    GiB,
)


class TestDatasetScale:
    def test_paper_counts(self):
        assert DATASET.total_papers == 8_293_485       # §3.1
        assert DATASET.embedding_dim == 2560           # Qwen3-Embedding-4B
        assert DATASET.n_query_terms == 22_723         # §3
        assert DATASET.workers_per_node == 4           # §3.2

    def test_dataset_is_about_80_gb(self):
        assert 78.0 < DATASET.total_gib < 80.0         # "≈80 GB"

    def test_1gb_subset(self):
        n = DATASET.vectors_for_gib(1.0)
        assert n * DATASET.bytes_per_vector == pytest.approx(GiB, rel=1e-4)


class TestEmbeddingCalibration:
    def test_table2_values(self):
        assert EMBEDDING.model_load_s == 28.17
        assert EMBEDDING.io_s == 7.49
        assert EMBEDDING.inference_s == 2381.97
        assert EMBEDDING.total_mean_s == 2417.84
        assert EMBEDDING.total_std_s == 113.92

    def test_inference_fraction_consistent(self):
        """§3.1: inference is 98.5% of total runtime."""
        frac = EMBEDDING.inference_s / EMBEDDING.total_mean_s
        assert frac == pytest.approx(EMBEDDING.inference_fraction, abs=0.001)

    def test_job_count_covers_corpus(self):
        """N=2,079 jobs x ~4,000 papers ≈ 8.29 M papers."""
        assert EMBEDDING.n_jobs * EMBEDDING.papers_per_job >= DATASET.total_papers
        assert (EMBEDDING.n_jobs - 10) * EMBEDDING.papers_per_job < DATASET.total_papers * 1.01

    def test_heuristic_limits(self):
        assert EMBEDDING.batch_char_limit == 150_000
        assert EMBEDDING.batch_max_papers == 8


class TestInsertionCalibration:
    def test_batch_curve_hits_anchors(self):
        a, c, d = INSERTION.batch_curve
        n = DATASET.vectors_for_gib(1.0)
        t = lambda b: n * (a / b + c + d * b)
        assert t(1) == pytest.approx(468.0, rel=0.001)      # Figure 2
        assert t(32) == pytest.approx(381.0, rel=0.001)     # Figure 2

    def test_batch_curve_minimum_at_32(self):
        a, _, d = INSERTION.batch_curve
        assert math.sqrt(a / d) == pytest.approx(32.0, rel=0.001)

    def test_amdahl_cap(self):
        """§3.2: maximum 1.31x by Amdahl's law (45.64 vs 14.86 ms)."""
        cap = (INSERTION.convert_ms_per_batch + INSERTION.rpc_ms_per_batch) / \
            INSERTION.convert_ms_per_batch
        assert cap == pytest.approx(1.33, abs=0.03)
        assert abs(cap - INSERTION.amdahl_cap) < 0.05

    def test_concurrency_anchors(self):
        n_b = math.ceil(DATASET.vectors_for_gib(1.0) / 32)
        t_cpu, t_rpc, kappa = (
            INSERTION.conc_t_cpu_s, INSERTION.conc_t_rpc_s, INSERTION.conc_kappa
        )
        t = lambda c: n_b * (t_cpu + t_rpc * (1 + kappa * (c - 1) ** 2) / c)
        assert t(1) == pytest.approx(381.0, rel=0.001)
        assert t(2) == pytest.approx(367.0, rel=0.001)
        assert t(3) > t(2)  # degrades after the optimum

    def test_table3_model_within_5pct(self):
        for w, hours in zip(INSERTION.table3_workers, INSERTION.table3_hours):
            model_s = (DATASET.total_papers / w) * INSERTION.t_vec_s * (
                1 + INSERTION.client_contention * (w - 1)
            )
            assert model_s == pytest.approx(hours * 3600.0, rel=0.05), f"W={w}"

    def test_1gb_and_80gb_rates_consistent(self):
        """The paper's own numbers agree: 381 s/1 GiB ≈ 8.22 h/79 GiB."""
        rate_1gb = 381.0 / DATASET.vectors_for_gib(1.0)
        rate_full = 8.22 * 3600.0 / DATASET.total_papers
        assert rate_1gb == pytest.approx(rate_full, rel=0.05)


class TestIndexingCalibration:
    def test_beta_from_speedup_anchors(self):
        """beta solves (32/4)^beta = 21.32/1.27."""
        assert 8.0 ** INDEXING.beta == pytest.approx(21.32 / 1.27, rel=1e-6)
        assert 1.3 < INDEXING.beta < 1.4

    def test_kappa_pack(self):
        assert 4.0 ** INDEXING.beta / (4.0 * INDEXING.kappa_pack) == pytest.approx(
            1.27, rel=1e-6
        )
        assert 1.2 < INDEXING.kappa_pack < 1.4

    def test_cpu_saturation_range(self):
        lo, hi = INDEXING.cpu_utilization_single_worker
        assert (lo, hi) == (0.90, 0.97)  # §3.3 profiling


class TestQueryCalibration:
    def test_batch_curve_anchors(self):
        a, c = QUERY.batch_curve
        nq = QUERY.n_queries
        assert nq * (a + c) == pytest.approx(139.0, rel=0.001)       # Figure 4
        assert nq * (a / 16 + c) == pytest.approx(73.0, rel=0.001)   # Figure 4

    def test_await_times_match_measurements(self):
        """§3.4: 30.7 / 76.4 / 170 ms at c = 2/4/8."""
        L = lambda c: QUERY.await_ms_c2 * (c / 2.0) ** QUERY.await_exponent
        assert L(2) == pytest.approx(30.7)
        assert L(4) == pytest.approx(76.4, rel=0.06)
        assert L(8) == pytest.approx(170.0, rel=0.06)

    def test_shard_cost_positive(self):
        p, q = QUERY.shard_cost_coeffs
        assert p > 0 and q > 0

    def test_shard_cost_matches_1gb(self):
        p, q = QUERY.shard_cost_coeffs
        n1 = DATASET.vectors_for_gib(1.0)
        _, c = QUERY.batch_curve
        assert p * n1 + q * n1 * n1 == pytest.approx(c, rel=1e-6)

    def test_max_speedup_reproduced(self):
        p, q = QUERY.shard_cost_coeffs
        n80 = DATASET.total_papers
        n30 = DATASET.vectors_for_gib(30.0)
        w = 32
        ts = lambda n: p * n + q * n * n
        comm = p * n30 * (1 - 1 / w) + q * n30 * n30 * (1 - 1 / w**2)
        speedup = ts(n80) / (ts(n80 / w) + comm)
        assert speedup == pytest.approx(3.57, rel=0.01)   # §3.4
