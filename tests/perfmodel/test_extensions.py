"""Unit tests for the future-work extension models (GPU indexing, variability)."""

import numpy as np
import pytest

from repro.perfmodel.gpu_indexing import GpuIndexBuildModel
from repro.perfmodel.indexing import IndexBuildModel
from repro.perfmodel.variability import NoiseModel, TrialStats, VariabilityStudy


class TestGpuIndexBuild:
    def test_validation(self):
        with pytest.raises(ValueError):
            GpuIndexBuildModel().time_s(0)

    def test_fits_boundary(self):
        m = GpuIndexBuildModel()
        limit = m.gpu.memory_bytes / (m.data.bytes_per_vector * m.graph_overhead)
        assert m.shard_fits_gpu(limit * 0.99)
        assert not m.shard_fits_gpu(limit * 1.01)

    def test_gpu_speedup_when_fitting(self):
        m = GpuIndexBuildModel()
        gib = 10.0
        # 32 shards of ~0.3 GiB each: deep inside device memory
        assert m.speedup_vs_cpu(32, dataset_gib=gib) > m.gpu_speedup  # + packing win

    def test_monotone_in_workers_when_fitting(self):
        m = GpuIndexBuildModel()
        times = [m.time_s(w, dataset_gib=10.0) for w in (4, 8, 16, 32)]
        assert times == sorted(times, reverse=True)

    def test_never_slower_than_cpu(self):
        m = GpuIndexBuildModel()
        cpu = IndexBuildModel()
        for w in (1, 2, 4, 16):
            for s in (1.0, 30.0, 79.0):
                assert m.time_s(w, dataset_gib=s) <= cpu.time_s(w, dataset_gib=s) + 1e-9


class TestNoiseModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(cv=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(straggler_prob=1.0)
        with pytest.raises(ValueError):
            NoiseModel(straggler_factor=0.5)

    def test_unit_mean(self):
        rng = np.random.default_rng(0)
        factors = NoiseModel(cv=0.1).sample_factors(20_000, rng)
        assert np.mean(factors) == pytest.approx(1.0, abs=0.01)

    def test_cv_matches(self):
        rng = np.random.default_rng(1)
        factors = NoiseModel(cv=0.2).sample_factors(50_000, rng)
        assert np.std(factors) / np.mean(factors) == pytest.approx(0.2, rel=0.05)

    def test_stragglers_raise_mean(self):
        rng = np.random.default_rng(2)
        clean = NoiseModel(cv=0.05).sample_factors(10_000, rng)
        rng = np.random.default_rng(2)
        tail = NoiseModel(cv=0.05, straggler_prob=0.1, straggler_factor=3.0
                          ).sample_factors(10_000, rng)
        assert np.mean(tail) > np.mean(clean) * 1.1


class TestVariabilityStudy:
    def test_trials_validation(self):
        with pytest.raises(ValueError):
            VariabilityStudy(trials=1)

    def test_negative_model_rejected(self):
        with pytest.raises(ValueError):
            VariabilityStudy(trials=5).run(lambda: -1.0)

    def test_stats_fields(self):
        stats = TrialStats(samples=np.array([1.0, 2.0, 3.0, 4.0]))
        assert stats.n == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.p50 == pytest.approx(2.5)
        assert stats.tail_ratio >= 1.0

    def test_compare_uses_same_seed(self):
        study = VariabilityStudy(NoiseModel(seed=7), trials=50)
        out = study.compare({"a": lambda: 10.0, "b": lambda: 20.0})
        # identical noise streams: b is exactly 2x a, sample-wise
        assert np.allclose(out["b"].samples, 2.0 * out["a"].samples)
