"""Unit tests for the future-work extension models (GPU indexing, variability)."""

import numpy as np
import pytest

from repro.perfmodel.gpu_indexing import GpuIndexBuildModel
from repro.perfmodel.indexing import IndexBuildModel
from repro.perfmodel.variability import NoiseModel, TrialStats, VariabilityStudy


class TestGpuIndexBuild:
    def test_validation(self):
        with pytest.raises(ValueError):
            GpuIndexBuildModel().time_s(0)

    def test_fits_boundary(self):
        m = GpuIndexBuildModel()
        limit = m.gpu.memory_bytes / (m.data.bytes_per_vector * m.graph_overhead)
        assert m.shard_fits_gpu(limit * 0.99)
        assert not m.shard_fits_gpu(limit * 1.01)

    def test_gpu_speedup_when_fitting(self):
        m = GpuIndexBuildModel()
        gib = 10.0
        # 32 shards of ~0.3 GiB each: deep inside device memory
        assert m.speedup_vs_cpu(32, dataset_gib=gib) > m.gpu_speedup  # + packing win

    def test_monotone_in_workers_when_fitting(self):
        m = GpuIndexBuildModel()
        times = [m.time_s(w, dataset_gib=10.0) for w in (4, 8, 16, 32)]
        assert times == sorted(times, reverse=True)

    def test_never_slower_than_cpu(self):
        m = GpuIndexBuildModel()
        cpu = IndexBuildModel()
        for w in (1, 2, 4, 16):
            for s in (1.0, 30.0, 79.0):
                assert m.time_s(w, dataset_gib=s) <= cpu.time_s(w, dataset_gib=s) + 1e-9


class TestNoiseModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(cv=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(straggler_prob=1.0)
        with pytest.raises(ValueError):
            NoiseModel(straggler_factor=0.5)

    def test_unit_mean(self):
        rng = np.random.default_rng(0)
        factors = NoiseModel(cv=0.1).sample_factors(20_000, rng)
        assert np.mean(factors) == pytest.approx(1.0, abs=0.01)

    def test_cv_matches(self):
        rng = np.random.default_rng(1)
        factors = NoiseModel(cv=0.2).sample_factors(50_000, rng)
        assert np.std(factors) / np.mean(factors) == pytest.approx(0.2, rel=0.05)

    def test_stragglers_raise_mean(self):
        rng = np.random.default_rng(2)
        clean = NoiseModel(cv=0.05).sample_factors(10_000, rng)
        rng = np.random.default_rng(2)
        tail = NoiseModel(cv=0.05, straggler_prob=0.1, straggler_factor=3.0
                          ).sample_factors(10_000, rng)
        assert np.mean(tail) > np.mean(clean) * 1.1


class TestVariabilityStudy:
    def test_trials_validation(self):
        with pytest.raises(ValueError):
            VariabilityStudy(trials=1)

    def test_negative_model_rejected(self):
        with pytest.raises(ValueError):
            VariabilityStudy(trials=5).run(lambda: -1.0)

    def test_stats_fields(self):
        stats = TrialStats(samples=np.array([1.0, 2.0, 3.0, 4.0]))
        assert stats.n == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.p50 == pytest.approx(2.5)
        assert stats.tail_ratio >= 1.0

    def test_compare_uses_same_seed(self):
        study = VariabilityStudy(NoiseModel(seed=7), trials=50)
        out = study.compare({"a": lambda: 10.0, "b": lambda: 20.0})
        # identical noise streams: b is exactly 2x a, sample-wise
        assert np.allclose(out["b"].samples, 2.0 * out["a"].samples)


class TestQuantizedScanModel:
    def setup_method(self):
        from repro.perfmodel.query import QuantizedScanModel

        self.model = QuantizedScanModel()

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            self.model.quantized_scan_s(1000, 128, batch=0)

    def test_decode_slower_than_gemv(self):
        assert self.model.decode_scan_s(100_000, 256) > self.model.quantized_scan_s(
            100_000, 256
        )

    def test_monotone_in_batch(self):
        costs = [
            self.model.quantized_scan_s(100_000, 256, batch=b)
            for b in (2, 4, 8, 16, 32)
        ]
        assert all(a > b for a, b in zip(costs, costs[1:]))

    def test_speedup_target_at_paper_scale(self):
        # The BENCH_quant.json acceptance bar: >= 3x at 100k x 256 for any
        # reasonable batch width, even paying rescore for 40 candidates.
        assert self.model.speedup(100_000, 256, batch=8, rescore_rows=40) >= 3.0
        assert self.model.speedup(100_000, 256, batch=32) > self.model.speedup(
            100_000, 256, batch=8
        )

    def test_rescore_adds_cost(self):
        base = self.model.quantized_scan_s(50_000, 128, batch=4)
        with_rescore = self.model.quantized_scan_s(
            50_000, 128, batch=4, rescore_rows=400
        )
        assert with_rescore > base
