"""Performance-model API tests (insertion, indexing, query, embedding, Amdahl)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel import (
    BatchSizeModel,
    ConcurrencyModel,
    EmbeddingJobModel,
    IndexBuildModel,
    QueryBatchModel,
    QueryConcurrencyModel,
    QueryScalingModel,
    WorkerScalingModel,
    amdahl_speedup,
    max_async_speedup,
    serial_fraction,
)


class TestAmdahl:
    def test_serial_fraction(self):
        assert serial_fraction(3.0, 1.0) == pytest.approx(0.75)
        with pytest.raises(ValueError):
            serial_fraction(0.0, 0.0)

    def test_amdahl_limits(self):
        assert amdahl_speedup(0.5, 1) == pytest.approx(1.0)
        assert amdahl_speedup(0.5, 1e12) == pytest.approx(2.0, rel=0.01)
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 2)
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0)

    def test_paper_cap(self):
        assert max_async_speedup(45.64, 14.86) == pytest.approx(1.326, abs=0.01)
        with pytest.raises(ValueError):
            max_async_speedup(0, 1)

    @given(st.floats(0.01, 1.0), st.integers(1, 1000))
    def test_speedup_bounded_by_inverse_serial(self, frac, n):
        assert 1.0 <= amdahl_speedup(frac, n) <= 1.0 / frac + 1e-9


class TestBatchSizeModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchSizeModel().time_s(0)

    def test_optimum_is_32(self):
        assert BatchSizeModel().optimal_batch_size() == 32

    def test_scales_with_dataset(self):
        m = BatchSizeModel()
        assert m.time_s(32, dataset_gib=2.0) == pytest.approx(2 * m.time_s(32), rel=0.001)

    @given(st.integers(1, 512))
    def test_u_shape(self, b):
        m = BatchSizeModel()
        assert m.time_s(b) >= m.time_s(32) - 1e-9


class TestConcurrencyModel:
    def test_optimum_is_2(self):
        assert ConcurrencyModel().optimal_concurrency() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ConcurrencyModel().time_s(0)

    def test_amdahl_limit(self):
        assert 1.28 < ConcurrencyModel().ideal_speedup_limit() < 1.36


class TestWorkerScaling:
    def test_monotone(self):
        m = WorkerScalingModel()
        times = [m.time_s(w) for w in (1, 4, 8, 16, 32)]
        assert times == sorted(times, reverse=True)

    def test_efficiency_declines(self):
        m = WorkerScalingModel()
        assert m.efficiency(4) > m.efficiency(16) > m.efficiency(32)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerScalingModel().time_s(0)

    def test_sweep(self):
        sweep = WorkerScalingModel().sweep([1, 4])
        assert set(sweep) == {1, 4}


class TestIndexBuildModel:
    def test_speedup_anchors(self):
        m = IndexBuildModel()
        assert m.speedup(4) == pytest.approx(1.27, rel=0.01)
        assert m.speedup(32) == pytest.approx(21.32, rel=0.01)

    def test_superlinear_shard_cost(self):
        m = IndexBuildModel()
        assert m.shard_build_s(2_000_000) > 2 * m.shard_build_s(1_000_000)

    def test_validation(self):
        m = IndexBuildModel()
        with pytest.raises(ValueError):
            m.time_s(0)
        with pytest.raises(ValueError):
            m.shard_build_s(-1)

    def test_speedup_independent_of_size(self):
        """The power-law model implies size-independent relative speedups."""
        m = IndexBuildModel()
        assert m.speedup(8, dataset_gib=10.0) == pytest.approx(
            m.speedup(8, dataset_gib=79.0), rel=0.001
        )

    def test_sweep_grid(self):
        grid = IndexBuildModel().sweep([1, 4], [1.0, 10.0])
        assert grid[4][10.0] > grid[4][1.0]


class TestQueryModels:
    def test_batch_optimum_region(self):
        m = QueryBatchModel()
        assert m.time_s(1) == pytest.approx(139.0, rel=0.001)
        assert m.time_s(16) == pytest.approx(73.0, rel=0.001)
        assert m.marginal_benefit(16) < m.marginal_benefit(1)

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            QueryBatchModel().time_s(0)

    def test_concurrency_optimum(self):
        m = QueryConcurrencyModel()
        assert m.optimal_concurrency() == 2
        assert m.time_s(1) > m.time_s(2)
        assert m.time_s(8) > m.time_s(2)

    def test_await_validation(self):
        with pytest.raises(ValueError):
            QueryConcurrencyModel().await_ms(0)

    def test_scaling_crossover(self):
        m = QueryScalingModel()
        for w in (4, 8, 16, 32):
            assert m.crossover_gib(w) == pytest.approx(30.0, abs=1.0)

    def test_scaling_below_crossover_hurts(self):
        m = QueryScalingModel()
        assert m.speedup(4, 10.0) < 1.0

    def test_scaling_above_crossover_helps(self):
        m = QueryScalingModel()
        assert m.speedup(4, 60.0) > 1.0

    def test_max_speedup(self):
        m = QueryScalingModel()
        assert m.speedup(32, 79.09) == pytest.approx(3.57, abs=0.1)

    def test_marginal_beyond_4(self):
        m = QueryScalingModel()
        full = 79.09
        assert m.speedup(32, full) - m.speedup(4, full) < 0.45 * m.speedup(4, full)

    def test_crossover_validation(self):
        with pytest.raises(ValueError):
            QueryScalingModel().crossover_gib(1)

    def test_comm_monotone_in_workers(self):
        m = QueryScalingModel()
        assert 0.0 == m.comm_s(1) < m.comm_s(2) < m.comm_s(8) < m.comm_s(32)


class TestEmbeddingJobModel:
    def test_table2_reproduced(self):
        times = EmbeddingJobModel().job_times()
        assert times.model_load_s == pytest.approx(28.17)
        assert times.io_s == pytest.approx(7.49, rel=0.001)
        assert times.inference_s == pytest.approx(2381.97, rel=0.001)
        assert times.inference_fraction == pytest.approx(0.985, abs=0.002)

    def test_validation(self):
        with pytest.raises(ValueError):
            EmbeddingJobModel().job_times(-1)

    def test_campaign_jobs(self):
        m = EmbeddingJobModel()
        assert m.campaign_jobs(8_293_485) == 2074
        assert m.campaign_node_hours(8_293_485) > 1000
