"""CachedQueryModel: the cache term of the query perf model."""

import pytest

from repro.perfmodel import CachedQueryModel


class TestHitRate:
    def test_bounds_and_monotonic_in_repeats(self):
        m = CachedQueryModel()
        rates = [m.hit_rate(n, 100, skew=1.0) for n in (1, 10, 100, 10_000)]
        assert all(0.0 <= r <= 1.0 for r in rates)
        assert rates == sorted(rates)  # more replay → more repeats → more hits
        assert rates[0] == 0.0  # a single cold query cannot hit

    def test_skew_raises_hit_rate(self):
        m = CachedQueryModel()
        flat = m.hit_rate(1000, 500, skew=0.0)
        skewed = m.hit_rate(1000, 500, skew=1.5)
        assert skewed > flat

    def test_invalidation_scales_down(self):
        m = CachedQueryModel()
        full = m.hit_rate(1000, 10, skew=1.0)
        half = m.hit_rate(1000, 10, skew=1.0, invalidation_rate=0.5)
        assert half == pytest.approx(full / 2)
        assert m.hit_rate(1000, 10, invalidation_rate=1.0) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_queries=0, n_topics=10),
            dict(n_queries=10, n_topics=0),
            dict(n_queries=10, n_topics=10, invalidation_rate=1.5),
        ],
    )
    def test_rejects_bad_args(self, kwargs):
        with pytest.raises(ValueError):
            CachedQueryModel().hit_rate(**kwargs)


class TestQueryTime:
    def test_limits(self):
        m = CachedQueryModel()
        base = 2e-3
        # All hits: only the lookup remains.  No hits: lookup + fill overhead.
        assert m.query_s(base, 1.0) == pytest.approx(m.lookup_s)
        assert m.query_s(base, 0.0) == pytest.approx(m.lookup_s + base + m.fill_s)

    def test_speedup_grows_with_hit_rate(self):
        m = CachedQueryModel()
        base = 2e-3
        ups = [m.speedup(base, h) for h in (0.0, 0.3, 0.6, 0.9)]
        assert ups == sorted(ups)
        assert ups[0] < 1.0  # pure overhead at 0% hits
        assert m.speedup(base, 0.6) >= 2.0  # the bench regime, conservatively

    def test_rejects_bad_hit_rate(self):
        with pytest.raises(ValueError):
            CachedQueryModel().query_s(1e-3, 1.1)

    def test_speedup_from_skew_composes(self):
        m = CachedQueryModel()
        direct = m.speedup_from_skew(2e-3, 10_000, 200, skew=1.0)
        h = m.hit_rate(10_000, 200, skew=1.0)
        assert direct == pytest.approx(m.speedup(2e-3, h))
        # The bench workload shape (Zipf s=1.0, many repeats) predicts the
        # ≥3× acceptance bar with room to spare at fan-out-scale base costs.
        assert h >= 0.6
        assert direct >= 3.0
