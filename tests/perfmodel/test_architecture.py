"""Unit tests for the §2.2 architecture-comparison model."""

import pytest

from repro.perfmodel.architecture import ScaleOutCost, ScaleOutCostModel


class TestScaleOutCost:
    def test_total(self):
        cost = ScaleOutCost(transfer_s=10.0, index_rebuild_s=90.0)
        assert cost.total_s == 100.0


class TestScaleOutCostModel:
    def test_validation(self):
        model = ScaleOutCostModel()
        with pytest.raises(ValueError):
            model.stateful_cost(8, 4)
        with pytest.raises(ValueError):
            model.stateless_cost(4, 4)

    def test_stateless_has_no_rebuild(self):
        cost = ScaleOutCostModel().stateless_cost(4, 8)
        assert cost.index_rebuild_s == 0.0
        assert cost.transfer_s > 0.0

    def test_moved_fraction_scales(self):
        """Doubling moves half the data; 4->32 moves 7/8 of it."""
        model = ScaleOutCostModel()
        double = model.stateful_cost(4, 8)
        big = model.stateful_cost(4, 32)
        # more data moved but over more receiving pairs: transfer can shrink,
        # while per-worker shard (and hence rebuild) gets smaller
        assert big.index_rebuild_s < double.index_rebuild_s

    def test_advantage_positive_everywhere(self):
        model = ScaleOutCostModel()
        for pair in [(1, 2), (4, 8), (8, 32)]:
            assert model.advantage(*pair) > 1.0

    def test_amortization_inf_when_stateful_cheaper(self):
        # contrived: free rebuild and an absurdly slow object store
        model = ScaleOutCostModel(object_store_Bps=1.0)
        assert model.amortization_events(4, 8, steady_state_penalty_s=1.0) == float("inf")
