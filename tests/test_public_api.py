"""Public API surface tests: every documented entry point imports and the
package exports are consistent with ``__all__``."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.core.index",
    "repro.sim",
    "repro.hpc",
    "repro.embed",
    "repro.workloads",
    "repro.perfmodel",
    "repro.systems",
    "repro.bench",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    """Everything in __all__ must actually exist on the module."""
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_core_quickstart_surface():
    """The README quickstart's names must all be importable from repro.core."""
    from repro.core import (  # noqa: F401
        Batch,
        Collection,
        CollectionConfig,
        Distance,
        FieldMatch,
        Filter,
        OptimizerConfig,
        PointStruct,
        RecommendRequest,
        SearchRequest,
        VectorParams,
        load_snapshot,
        save_snapshot,
    )
    from repro.core.aioclient import AsyncClient  # noqa: F401
    from repro.core.client import SyncClient  # noqa: F401
    from repro.core.cluster import Cluster  # noqa: F401
    from repro.core.mpclient import ParallelClientPool  # noqa: F401
    from repro.core.multivector import MultiVectorCollection  # noqa: F401
    from repro.core.telemetry import collect  # noqa: F401


def test_every_public_module_has_docstring():
    import pkgutil

    import repro

    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not (module.__doc__ or "").strip():
            missing.append(info.name)
    assert not missing, f"modules without docstrings: {missing}"
